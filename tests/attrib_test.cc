// Unit tests for obs::attrib on hand-built StepRecord vectors: binding-term
// classification, the exact four-component decomposition, what-if bounds,
// slack/imbalance accounting, and the JSON/Perfetto exports.
#include "obs/attrib.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/obs.h"
#include "tests/json_checker.h"

namespace maze::obs::attrib {
namespace {

double MaxOf(const std::vector<double>& v) {
  double m = 0;
  for (double x : v) m = std::max(m, x);
  return m;
}

// Builds a traced StepRecord the way SimClock does: per-rank vectors plus
// aggregates that are the per-rank maxes.
rt::StepRecord Step(int idx, std::vector<double> compute,
                    std::vector<double> wire, std::vector<double> fault,
                    bool overlapped = false) {
  rt::StepRecord s;
  s.step = idx;
  s.overlapped = overlapped;
  s.compute_seconds = MaxOf(compute);
  s.wire_seconds = MaxOf(wire);
  s.fault_seconds = MaxOf(fault);
  s.rank_compute_seconds = std::move(compute);
  s.rank_wire_seconds = std::move(wire);
  s.rank_fault_seconds = std::move(fault);
  return s;
}

rt::RunMetrics MakeRun(std::vector<rt::StepRecord> steps) {
  rt::RunMetrics m;
  for (const rt::StepRecord& s : steps) m.elapsed_seconds += s.StepSeconds();
  m.steps = std::move(steps);
  return m;
}

TEST(AttribTest, UntracedRunIsUnavailable) {
  rt::RunMetrics m;
  m.elapsed_seconds = 3.0;  // Elapsed alone cannot be explained.
  Attribution a = Attribute(m);
  EXPECT_FALSE(a.available);
  EXPECT_EQ(a.ToJson(), "{\"available\":false}");
  EXPECT_TRUE(testutil::JsonChecker(a.ToJson()).Valid());
}

TEST(AttribTest, BindingTermAndRankClassification) {
  Attribution a = Attribute(MakeRun({
      Step(0, {0.1, 0.5}, {0.2, 0.1}, {0, 0}),    // compute binds, rank 1.
      Step(1, {0.1, 0.1}, {0.6, 0.2}, {0, 0}),    // wire binds, rank 0.
      Step(2, {0.1, 0.1}, {0.2, 0.1}, {0, 0.9}),  // fault binds, rank 1.
  }));
  ASSERT_TRUE(a.available);
  ASSERT_EQ(a.steps.size(), 3u);
  EXPECT_EQ(a.steps[0].binding_term, BindingTerm::kCompute);
  EXPECT_EQ(a.steps[0].binding_rank, 1);
  EXPECT_EQ(a.steps[1].binding_term, BindingTerm::kWire);
  EXPECT_EQ(a.steps[1].binding_rank, 0);
  EXPECT_EQ(a.steps[2].binding_term, BindingTerm::kFault);
  EXPECT_EQ(a.steps[2].binding_rank, 1);
}

TEST(AttribTest, ZeroDurationStepBindsNothing) {
  Attribution a = Attribute(MakeRun({Step(0, {0, 0}, {0, 0}, {0, 0})}));
  ASSERT_EQ(a.steps.size(), 1u);
  EXPECT_EQ(a.steps[0].binding_term, BindingTerm::kNone);
  EXPECT_EQ(a.steps[0].binding_rank, -1);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, 0.0);
}

TEST(AttribTest, OverlapHidesTheSmallerTerm) {
  // Overlapped barrier = max(compute, wire): the hidden side contributes 0.
  Attribution a = Attribute(
      MakeRun({Step(0, {0.5, 0.2}, {0.4, 0.1}, {0, 0}, /*overlapped=*/true)}));
  ASSERT_EQ(a.steps.size(), 1u);
  EXPECT_EQ(a.steps[0].binding_term, BindingTerm::kCompute);
  EXPECT_DOUBLE_EQ(a.steps[0].wire_seconds, 0.0);
  EXPECT_DOUBLE_EQ(a.steps[0].step_seconds, 0.5);
  // compute mean 0.35 + imbalance 0.15 = 0.5, exactly the barrier.
  EXPECT_DOUBLE_EQ(a.steps[0].compute_seconds, 0.35);
  EXPECT_DOUBLE_EQ(a.steps[0].imbalance_seconds, 0.15);
  EXPECT_DOUBLE_EQ(a.ComponentSum(), 0.5);

  // Wire-bound overlap: compute hides instead.
  Attribution b = Attribute(
      MakeRun({Step(0, {0.1, 0.2}, {0.6, 0.4}, {0, 0}, /*overlapped=*/true)}));
  EXPECT_EQ(b.steps[0].binding_term, BindingTerm::kWire);
  EXPECT_DOUBLE_EQ(b.steps[0].compute_seconds, 0.0);
  EXPECT_DOUBLE_EQ(b.steps[0].wire_seconds, 0.5);
  EXPECT_DOUBLE_EQ(b.steps[0].imbalance_seconds, 0.1);
}

TEST(AttribTest, OverlapTieGoesToCompute) {
  Attribution a = Attribute(
      MakeRun({Step(0, {0.5, 0.5}, {0.5, 0.5}, {0, 0}, /*overlapped=*/true)}));
  EXPECT_EQ(a.steps[0].binding_term, BindingTerm::kCompute);
  EXPECT_DOUBLE_EQ(a.steps[0].wire_seconds, 0.0);
  EXPECT_DOUBLE_EQ(a.ComponentSum(), 0.5);
}

TEST(AttribTest, ComponentsSumExactlyToElapsed) {
  rt::RunMetrics m = MakeRun({
      Step(0, {0.1, 0.5, 0.3}, {0.2, 0.1, 0.05}, {0, 0, 0}),
      Step(1, {0.4, 0.4, 0.4}, {0.3, 0.6, 0.1}, {0.2, 0, 0.1},
           /*overlapped=*/true),
      Step(2, {1.0, 0.2, 0.1}, {0, 0, 0}, {0, 0, 0}),
  });
  Attribution a = Attribute(m);
  ASSERT_TRUE(a.available);
  EXPECT_NEAR(a.ComponentSum(), m.elapsed_seconds,
              1e-9 * std::max(1.0, m.elapsed_seconds));
  EXPECT_NEAR(a.elapsed_seconds, m.elapsed_seconds,
              1e-9 * std::max(1.0, m.elapsed_seconds));
  // Every per-step split sums to its own barrier time too.
  for (const StepAttribution& s : a.steps) {
    EXPECT_NEAR(s.compute_seconds + s.wire_seconds + s.imbalance_seconds +
                    s.fault_seconds,
                s.step_seconds, 1e-12)
        << "step " << s.step;
  }
}

TEST(AttribTest, WhatIfBoundsAreMonotoneAndBelowActual) {
  rt::RunMetrics m = MakeRun({
      Step(0, {0.1, 0.5}, {0.4, 0.2}, {0.1, 0}),
      Step(1, {0.3, 0.3}, {0.5, 0.6}, {0, 0.2}, /*overlapped=*/true),
      Step(2, {0.8, 0.1}, {0, 0}, {0, 0}),
  });
  Attribution a = Attribute(m);
  const WhatIfBounds& b = a.bounds;
  double actual = a.elapsed_seconds;
  EXPECT_LE(b.infinite_bandwidth_seconds, actual);
  EXPECT_LE(b.perfect_balance_seconds, actual);
  EXPECT_LE(b.zero_fault_seconds, actual);
  EXPECT_LE(b.best_case_seconds, actual);
  // The all-counterfactuals bound cannot beat any single counterfactual.
  EXPECT_LE(b.best_case_seconds, b.infinite_bandwidth_seconds);
  EXPECT_LE(b.best_case_seconds, b.perfect_balance_seconds);
  EXPECT_LE(b.best_case_seconds, b.zero_fault_seconds);
  // And with faults + wire + imbalance all present, each is strictly better.
  EXPECT_LT(b.infinite_bandwidth_seconds, actual);
  EXPECT_LT(b.perfect_balance_seconds, actual);
  EXPECT_LT(b.zero_fault_seconds, actual);
}

TEST(AttribTest, ImbalanceFactorTracksComputeSkew) {
  Attribution a = Attribute(MakeRun({
      Step(0, {0.2, 0.6}, {0, 0}, {0, 0}),  // mean 0.4, max 0.6 -> 1.5.
      Step(1, {0.3, 0.3}, {0, 0}, {0, 0}),  // balanced -> 1.0.
  }));
  ASSERT_EQ(a.steps.size(), 2u);
  EXPECT_DOUBLE_EQ(a.steps[0].imbalance_factor, 1.5);
  EXPECT_DOUBLE_EQ(a.steps[1].imbalance_factor, 1.0);
  EXPECT_DOUBLE_EQ(a.max_imbalance_factor, 1.5);
  EXPECT_GT(a.mean_imbalance_factor, 1.0);
  EXPECT_LT(a.mean_imbalance_factor, 1.5);
}

TEST(AttribTest, RankSlackMeasuresBarrierIdleTime) {
  Attribution a = Attribute(MakeRun({
      Step(0, {0.5, 0.1}, {0.3, 0.1}, {0, 0}),
  }));
  // Barrier = 0.5 + 0.3 = 0.8; rank 0 busy 0.8 (slack 0), rank 1 busy 0.2.
  ASSERT_EQ(a.rank_slack_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(a.rank_slack_seconds[0], 0.0);
  EXPECT_NEAR(a.rank_slack_seconds[1], 0.6, 1e-12);
  EXPECT_EQ(a.num_ranks, 2);
}

TEST(AttribTest, AggregateOnlyRecordsFallBackGracefully) {
  // Hand-built record with no per-rank vectors: mean degrades to the max, so
  // imbalance reads as zero and no binding rank can be named.
  rt::StepRecord s{0, 1.0, 0.5, 64, 1, false, 0.25};
  Attribution a = Attribute(MakeRun({s}));
  ASSERT_TRUE(a.available);
  ASSERT_EQ(a.steps.size(), 1u);
  EXPECT_EQ(a.steps[0].binding_term, BindingTerm::kCompute);
  EXPECT_EQ(a.steps[0].binding_rank, -1);
  EXPECT_DOUBLE_EQ(a.steps[0].imbalance_seconds, 0.0);
  EXPECT_DOUBLE_EQ(a.steps[0].imbalance_factor, 1.0);
  EXPECT_EQ(a.num_ranks, 0);
  EXPECT_NEAR(a.ComponentSum(), 1.75, 1e-12);
}

TEST(AttribTest, TrailingZeroDurationRecordChangesNothing) {
  std::vector<rt::StepRecord> steps = {Step(0, {0.2, 0.4}, {0.1, 0.3}, {0, 0})};
  Attribution before = Attribute(MakeRun(steps));

  rt::StepRecord tail;  // SimClock::Finish's leftover-bytes record.
  tail.step = 1;
  tail.bytes_sent = 4096;
  tail.messages_sent = 2;
  tail.rank_compute_seconds = {0, 0};
  tail.rank_wire_seconds = {0, 0};
  tail.rank_fault_seconds = {0, 0};
  steps.push_back(tail);
  Attribution after = Attribute(MakeRun(steps));

  EXPECT_DOUBLE_EQ(after.ComponentSum(), before.ComponentSum());
  EXPECT_DOUBLE_EQ(after.elapsed_seconds, before.elapsed_seconds);
  ASSERT_EQ(after.steps.size(), 2u);
  EXPECT_EQ(after.steps[1].binding_term, BindingTerm::kNone);
}

TEST(AttribTest, VerdictNamesTheDominantComponent) {
  Attribution wire_bound =
      Attribute(MakeRun({Step(0, {0.1, 0.1}, {0.9, 0.9}, {0, 0})}));
  EXPECT_EQ(std::string(wire_bound.Verdict()), "network-bound");
  Attribution compute_bound =
      Attribute(MakeRun({Step(0, {0.9, 0.9}, {0.1, 0.1}, {0, 0})}));
  EXPECT_EQ(std::string(compute_bound.Verdict()), "compute-bound");
  Attribution fault_bound =
      Attribute(MakeRun({Step(0, {0.1, 0.1}, {0.1, 0.1}, {0.9, 0.9})}));
  EXPECT_EQ(std::string(fault_bound.Verdict()), "fault-bound");
  // Three ranks, one straggler: mean compute 0.3 but 0.6 of imbalance idle.
  Attribution imbalance_bound =
      Attribute(MakeRun({Step(0, {0.0, 0.0, 0.9}, {0.1, 0.1, 0.1}, {0, 0, 0})}));
  EXPECT_EQ(std::string(imbalance_bound.Verdict()), "imbalance-bound");
}

TEST(AttribTest, JsonIsValidAndByteDeterministic) {
  rt::RunMetrics m = MakeRun({
      Step(0, {0.1, 0.5}, {0.4, 0.2}, {0.1, 0}),
      Step(1, {0.3, 0.3}, {0.5, 0.6}, {0, 0.2}, /*overlapped=*/true),
  });
  Attribution a = Attribute(m);
  std::string json = a.ToJson();
  EXPECT_TRUE(testutil::JsonChecker(json).Valid()) << json;
  // Pure function of the records: identical bytes on every evaluation.
  EXPECT_EQ(json, Attribute(m).ToJson());

  AttributionReport report;
  AttributionRow row;
  row.engine = "native";
  row.algorithm = "pagerank";
  row.dataset = "rmat";
  row.ranks = 2;
  row.attribution = a;
  report.Add(row);
  EXPECT_TRUE(testutil::JsonChecker(report.ToJson()).Valid())
      << report.ToJson();
  std::string md = report.ToMarkdown();
  EXPECT_NE(md.find("| native | rmat | 2 |"), std::string::npos) << md;
  EXPECT_NE(md.find("## pagerank"), std::string::npos) << md;
}

TEST(AttribTest, AnnotateTracePushesCritSlicesAndFlows) {
  ResetAll();
  SetEnabled(true);
  Attribution a = Attribute(MakeRun({
      Step(0, {0.1, 0.5}, {0.4, 0.2}, {0, 0}),
      Step(1, {0.1, 0.1}, {0.6, 0.2}, {0, 0}),
      Step(2, {0.9, 0.1}, {0.1, 0.1}, {0, 0}),
  }));
  AnnotateTrace(a, "native");
  SetEnabled(false);

  int crit = 0;
  int flow_starts = 0;
  int flow_ends = 0;
  for (const Event& e : SnapshotEvents()) {
    crit += e.kind == EventKind::kCritSpan;
    flow_starts += e.kind == EventKind::kFlowStart;
    flow_ends += e.kind == EventKind::kFlowEnd;
  }
  EXPECT_EQ(crit, 3);         // One slice per non-empty barrier.
  EXPECT_EQ(flow_starts, 3);  // A start in every slice...
  EXPECT_EQ(flow_ends, 2);    // ...consumed by the next slice.

  std::string trace = ChromeTraceJson();
  EXPECT_TRUE(testutil::JsonChecker(trace).Valid());
  EXPECT_NE(trace.find("critical path (modeled)"), std::string::npos);
  EXPECT_NE(trace.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(trace.find("binding_rank"), std::string::npos);
  ResetAll();
}

TEST(AttribTest, AnnotateTraceIsNoOpWhenDisabled) {
  ResetAll();
  Attribution a = Attribute(MakeRun({Step(0, {0.5}, {0.1}, {0})}));
  AnnotateTrace(a, "native");  // Tracing disabled: must push nothing.
  EXPECT_TRUE(SnapshotEvents().empty());
}

}  // namespace
}  // namespace maze::obs::attrib
