#include "core/bipartite.h"

#include <gtest/gtest.h>

namespace maze {
namespace {

TEST(BipartiteTest, BuildsBothDirections) {
  std::vector<Rating> ratings = {
      {0, 0, 5.0f}, {0, 1, 3.0f}, {1, 1, 4.0f}, {2, 0, 1.0f}};
  BipartiteGraph g = BipartiteGraph::FromRatings(3, 2, ratings);
  EXPECT_EQ(g.num_users(), 3u);
  EXPECT_EQ(g.num_items(), 2u);
  EXPECT_EQ(g.num_ratings(), 4u);

  auto u0 = g.UserRatings(0);
  ASSERT_EQ(u0.size(), 2u);
  EXPECT_EQ(u0[0].id, 0u);
  EXPECT_FLOAT_EQ(u0[0].rating, 5.0f);
  EXPECT_EQ(u0[1].id, 1u);

  auto i1 = g.ItemRatings(1);
  ASSERT_EQ(i1.size(), 2u);
  EXPECT_EQ(i1[0].id, 0u);
  EXPECT_EQ(i1[1].id, 1u);
  EXPECT_FLOAT_EQ(i1[1].rating, 4.0f);
}

TEST(BipartiteTest, DegreesMatch) {
  std::vector<Rating> ratings = {{0, 0, 1}, {0, 1, 1}, {0, 2, 1}, {1, 2, 1}};
  BipartiteGraph g = BipartiteGraph::FromRatings(2, 3, ratings);
  EXPECT_EQ(g.UserDegree(0), 3u);
  EXPECT_EQ(g.UserDegree(1), 1u);
  EXPECT_EQ(g.ItemDegree(2), 2u);
  EXPECT_EQ(g.ItemDegree(0), 1u);
}

TEST(BipartiteTest, RatingMassConserved) {
  // Sum of ratings seen from the user side equals the item side.
  std::vector<Rating> ratings;
  for (VertexId u = 0; u < 50; ++u) {
    for (VertexId v = 0; v < 20; v += (u % 3) + 1) {
      ratings.push_back({u, v, static_cast<float>(u + v)});
    }
  }
  BipartiteGraph g = BipartiteGraph::FromRatings(50, 20, ratings);
  double user_sum = 0;
  for (VertexId u = 0; u < g.num_users(); ++u) {
    for (const auto& e : g.UserRatings(u)) user_sum += e.rating;
  }
  double item_sum = 0;
  for (VertexId v = 0; v < g.num_items(); ++v) {
    for (const auto& e : g.ItemRatings(v)) item_sum += e.rating;
  }
  EXPECT_DOUBLE_EQ(user_sum, item_sum);
}

TEST(BipartiteTest, EmptyRatings) {
  BipartiteGraph g = BipartiteGraph::FromRatings(5, 5, {});
  EXPECT_EQ(g.num_ratings(), 0u);
  EXPECT_TRUE(g.UserRatings(0).empty());
  EXPECT_TRUE(g.ItemRatings(4).empty());
}

}  // namespace
}  // namespace maze
