#include "util/bitvector.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace maze {
namespace {

TEST(BitvectorTest, StartsCleared) {
  Bitvector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(bv.Test(i));
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitvectorTest, SetTestClear) {
  Bitvector bv(200);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(199);
  EXPECT_TRUE(bv.Test(0));
  EXPECT_TRUE(bv.Test(63));
  EXPECT_TRUE(bv.Test(64));
  EXPECT_TRUE(bv.Test(199));
  EXPECT_FALSE(bv.Test(1));
  EXPECT_FALSE(bv.Test(65));
  EXPECT_EQ(bv.Count(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Test(63));
  EXPECT_EQ(bv.Count(), 3u);
}

TEST(BitvectorTest, TestAndSetAtomicReportsFirstSetter) {
  Bitvector bv(64);
  EXPECT_TRUE(bv.TestAndSetAtomic(17));
  EXPECT_FALSE(bv.TestAndSetAtomic(17));
  EXPECT_TRUE(bv.Test(17));
}

TEST(BitvectorTest, ConcurrentClaimsAreExclusive) {
  constexpr size_t kBits = 10000;
  Bitvector bv(kBits);
  std::atomic<size_t> claims{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      size_t mine = 0;
      for (size_t i = 0; i < kBits; ++i) {
        if (bv.TestAndSetAtomic(i)) ++mine;
      }
      claims.fetch_add(mine);
    });
  }
  for (auto& t : threads) t.join();
  // Every bit claimed exactly once across all threads.
  EXPECT_EQ(claims.load(), kBits);
  EXPECT_EQ(bv.Count(), kBits);
}

TEST(BitvectorTest, ResetClearsAllKeepingSize) {
  Bitvector bv(100);
  for (size_t i = 0; i < 100; i += 3) bv.Set(i);
  bv.Reset();
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitvectorTest, IntersectCount) {
  Bitvector a(256);
  Bitvector b(256);
  for (size_t i = 0; i < 256; i += 2) a.Set(i);   // Evens.
  for (size_t i = 0; i < 256; i += 3) b.Set(i);   // Multiples of 3.
  // Intersection: multiples of 6 in [0, 256): 0, 6, ..., 252 -> 43 values.
  EXPECT_EQ(a.IntersectCount(b), 43u);
}

TEST(BitvectorTest, AppendSetBitsReturnsSortedIndices) {
  Bitvector bv(300);
  std::vector<uint32_t> expected = {1, 63, 64, 65, 128, 299};
  for (uint32_t i : expected) bv.Set(i);
  std::vector<uint32_t> got;
  bv.AppendSetBits(&got);
  EXPECT_EQ(got, expected);
}

TEST(BitvectorTest, MemoryBytesScalesWithSize) {
  Bitvector small(64);
  Bitvector large(64 * 1024);
  EXPECT_EQ(small.MemoryBytes(), 8u);
  EXPECT_EQ(large.MemoryBytes(), 8u * 1024);
}

TEST(BitvectorTest, EmptyVector) {
  Bitvector bv;
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_EQ(bv.Count(), 0u);
  std::vector<uint32_t> out;
  bv.AppendSetBits(&out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace maze
