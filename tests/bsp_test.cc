#include "bsp/algorithms.h"

#include <gtest/gtest.h>

#include "native/cf.h"
#include "native/reference.h"
#include "tests/test_graphs.h"

namespace maze::bsp {
namespace {

using testgraphs::SmallRmat;
using testgraphs::SmallRmatOriented;
using testgraphs::SmallRmatUndirected;

rt::EngineConfig Config(int ranks = 1) {
  rt::EngineConfig config;
  config.num_ranks = ranks;
  config.comm = DefaultComm();
  return config;
}

TEST(BspPageRankTest, MatchesReference) {
  Graph g = Graph::FromEdges(SmallRmat(), GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 5;
  auto result = PageRank(Graph::FromEdges(SmallRmat(), GraphDirections::kOutOnly),
                         opt, Config());
  auto expected = native::ReferencePageRank(g, 5, opt.jump);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], expected[v], 1e-9) << v;
  }
}

class BspRanksTest : public ::testing::TestWithParam<int> {};

TEST_P(BspRanksTest, BfsMatchesReference) {
  Graph g = Graph::FromEdges(SmallRmatUndirected(9), GraphDirections::kOutOnly);
  auto result = Bfs(g, rt::BfsOptions{0}, Config(GetParam()));
  EXPECT_EQ(result.distance, native::ReferenceBfs(g, 0));
}

TEST_P(BspRanksTest, TriangleCountMatchesReference) {
  Graph g = Graph::FromEdges(SmallRmatOriented(9), GraphDirections::kOutOnly);
  auto result = TriangleCount(g, {}, Config(GetParam()));
  EXPECT_EQ(result.triangles, native::ReferenceTriangleCount(g));
}

INSTANTIATE_TEST_SUITE_P(Ranks, BspRanksTest, ::testing::Values(1, 2, 4));

TEST(BspTriangleTest, SuperstepSplittingPreservesCount) {
  Graph g = Graph::FromEdges(SmallRmatOriented(9), GraphDirections::kOutOnly);
  uint64_t expected = native::ReferenceTriangleCount(g);
  for (int phases : {1, 4, 16, 100}) {
    BspOptions bsp;
    bsp.superstep_phases = phases;
    auto result = TriangleCount(g, {}, Config(2), bsp);
    EXPECT_EQ(result.triangles, expected) << phases << " phases";
  }
}

TEST(BspTriangleTest, SuperstepSplittingCutsBufferMemory) {
  // §6.1.3: processing 1% of vertices per mini-step keeps only ~1% of messages
  // alive. With the message volume of triangle counting this is the difference
  // between running and OOMing in the paper.
  Graph g = Graph::FromEdges(SmallRmatOriented(11, 12), GraphDirections::kOutOnly);
  BspOptions whole;
  BspOptions split;
  split.superstep_phases = 100;
  auto buffered = TriangleCount(g, {}, Config(2), whole);
  auto phased = TriangleCount(g, {}, Config(2), split);
  EXPECT_EQ(buffered.triangles, phased.triangles);
  EXPECT_LT(phased.metrics.memory_peak_bytes,
            buffered.metrics.memory_peak_bytes / 4);
}

TEST(BspCfTest, GdMatchesNativeGd) {
  BipartiteGraph g = testgraphs::SmallRatings(9).ToGraph();
  rt::CfOptions opt;
  opt.method = rt::CfMethod::kGd;
  opt.k = 4;
  opt.iterations = 3;
  opt.step_decay = 1.0;  // bspgraph keeps gamma fixed; align native.
  auto bs = CollaborativeFiltering(g, opt, Config());
  auto nat = native::CollaborativeFiltering(g, opt, rt::EngineConfig{});
  for (size_t i = 0; i < nat.user_factors.size(); ++i) {
    ASSERT_NEAR(bs.user_factors[i], nat.user_factors[i], 1e-9) << i;
  }
}

TEST(BspCfTest, SplitSuperstepsStillConverge) {
  BipartiteGraph g = testgraphs::SmallRatings(9).ToGraph();
  rt::CfOptions opt;
  opt.method = rt::CfMethod::kGd;
  opt.k = 4;
  opt.iterations = 3;
  opt.step_decay = 1.0;
  BspOptions split;
  split.superstep_phases = 10;
  auto phased = CollaborativeFiltering(g, opt, Config(2), split);
  auto whole = CollaborativeFiltering(g, opt, Config(2), BspOptions{});
  // Splitting lets some messages fold within the same logical superstep, so the
  // GD trajectory differs slightly (documented engine semantic); both runs must
  // still land at essentially the same quality.
  EXPECT_NEAR(phased.final_rmse, whole.final_rmse,
              0.02 * whole.final_rmse + 1e-12);
}

TEST(BspEngineTest, WorkerCapLowersCpuUtilization) {
  Graph g = Graph::FromEdges(SmallRmat(9), GraphDirections::kOutOnly);
  rt::PageRankOptions opt;
  opt.iterations = 2;
  auto result = PageRank(g, opt, Config(2));
  // 4 workers on a 24-thread node caps utilization at ~16.7%.
  EXPECT_LE(result.metrics.cpu_utilization, 4.0 / 24.0 + 1e-9);
}

TEST(BspEngineTest, UsesNettyCommProfile) {
  EXPECT_EQ(DefaultComm().name, "netty");
  EXPECT_LT(DefaultComm().bandwidth_bytes_per_sec, 0.5e9);
}

TEST(BspEngineTest, PageRankTrafficIsPerEdge) {
  // No combiner: PageRank traffic should scale with edges, exceeding the
  // per-(vertex, rank) volume a combining engine would ship.
  EdgeList el = SmallRmat(10, 8);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  rt::PageRankOptions opt;
  opt.iterations = 1;
  auto result = PageRank(g, opt, Config(2));
  uint64_t cross_rank_floor = g.num_edges() * 12 / 4;  // ~half edges cross, 12B.
  EXPECT_GT(result.metrics.bytes_sent, cross_rank_floor);
}

}  // namespace
}  // namespace maze::bsp
