#include "bsp/algorithms.h"

#include <gtest/gtest.h>

#include <cstring>

#include "native/cf.h"
#include "native/reference.h"
#include "rt/fault.h"
#include "tests/test_graphs.h"

namespace maze::bsp {
namespace {

using testgraphs::SmallRmat;
using testgraphs::SmallRmatOriented;
using testgraphs::SmallRmatUndirected;

rt::EngineConfig Config(int ranks = 1) {
  rt::EngineConfig config;
  config.num_ranks = ranks;
  config.comm = DefaultComm();
  return config;
}

TEST(BspPageRankTest, MatchesReference) {
  Graph g = Graph::FromEdges(SmallRmat(), GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 5;
  auto result = PageRank(Graph::FromEdges(SmallRmat(), GraphDirections::kOutOnly),
                         opt, Config());
  auto expected = native::ReferencePageRank(g, 5, opt.jump);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], expected[v], 1e-9) << v;
  }
}

class BspRanksTest : public ::testing::TestWithParam<int> {};

TEST_P(BspRanksTest, BfsMatchesReference) {
  Graph g = Graph::FromEdges(SmallRmatUndirected(9), GraphDirections::kOutOnly);
  auto result = Bfs(g, rt::BfsOptions{0}, Config(GetParam()));
  EXPECT_EQ(result.distance, native::ReferenceBfs(g, 0));
}

TEST_P(BspRanksTest, TriangleCountMatchesReference) {
  Graph g = Graph::FromEdges(SmallRmatOriented(9), GraphDirections::kOutOnly);
  auto result = TriangleCount(g, {}, Config(GetParam()));
  EXPECT_EQ(result.triangles, native::ReferenceTriangleCount(g));
}

INSTANTIATE_TEST_SUITE_P(Ranks, BspRanksTest, ::testing::Values(1, 2, 4));

TEST(BspTriangleTest, SuperstepSplittingPreservesCount) {
  Graph g = Graph::FromEdges(SmallRmatOriented(9), GraphDirections::kOutOnly);
  uint64_t expected = native::ReferenceTriangleCount(g);
  for (int phases : {1, 4, 16, 100}) {
    BspOptions bsp;
    bsp.superstep_phases = phases;
    auto result = TriangleCount(g, {}, Config(2), bsp);
    EXPECT_EQ(result.triangles, expected) << phases << " phases";
  }
}

TEST(BspTriangleTest, SuperstepSplittingCutsBufferMemory) {
  // §6.1.3: processing 1% of vertices per mini-step keeps only ~1% of messages
  // alive. With the message volume of triangle counting this is the difference
  // between running and OOMing in the paper.
  Graph g = Graph::FromEdges(SmallRmatOriented(11, 12), GraphDirections::kOutOnly);
  BspOptions whole;
  BspOptions split;
  split.superstep_phases = 100;
  auto buffered = TriangleCount(g, {}, Config(2), whole);
  auto phased = TriangleCount(g, {}, Config(2), split);
  EXPECT_EQ(buffered.triangles, phased.triangles);
  EXPECT_LT(phased.metrics.memory_peak_bytes,
            buffered.metrics.memory_peak_bytes / 4);
}

TEST(BspCfTest, GdMatchesNativeGd) {
  BipartiteGraph g = testgraphs::SmallRatings(9).ToGraph();
  rt::CfOptions opt;
  opt.method = rt::CfMethod::kGd;
  opt.k = 4;
  opt.iterations = 3;
  opt.step_decay = 1.0;  // bspgraph keeps gamma fixed; align native.
  auto bs = CollaborativeFiltering(g, opt, Config());
  auto nat = native::CollaborativeFiltering(g, opt, rt::EngineConfig{});
  for (size_t i = 0; i < nat.user_factors.size(); ++i) {
    ASSERT_NEAR(bs.user_factors[i], nat.user_factors[i], 1e-9) << i;
  }
}

TEST(BspCfTest, SplitSuperstepsStillConverge) {
  BipartiteGraph g = testgraphs::SmallRatings(9).ToGraph();
  rt::CfOptions opt;
  opt.method = rt::CfMethod::kGd;
  opt.k = 4;
  opt.iterations = 3;
  opt.step_decay = 1.0;
  BspOptions split;
  split.superstep_phases = 10;
  auto phased = CollaborativeFiltering(g, opt, Config(2), split);
  auto whole = CollaborativeFiltering(g, opt, Config(2), BspOptions{});
  // Splitting lets some messages fold within the same logical superstep, so the
  // GD trajectory differs slightly (documented engine semantic); both runs must
  // still land at essentially the same quality.
  EXPECT_NEAR(phased.final_rmse, whole.final_rmse,
              0.02 * whole.final_rmse + 1e-12);
}

TEST(BspEngineTest, WorkerCapLowersCpuUtilization) {
  Graph g = Graph::FromEdges(SmallRmat(9), GraphDirections::kOutOnly);
  rt::PageRankOptions opt;
  opt.iterations = 2;
  auto result = PageRank(g, opt, Config(2));
  // 4 workers on a 24-thread node caps utilization at ~16.7%.
  EXPECT_LE(result.metrics.cpu_utilization, 4.0 / 24.0 + 1e-9);
}

TEST(BspEngineTest, UsesNettyCommProfile) {
  EXPECT_EQ(DefaultComm().name, "netty");
  EXPECT_LT(DefaultComm().bandwidth_bytes_per_sec, 0.5e9);
}

// --- Boxed-message arena (DESIGN.md §4f) -------------------------------------

// Restores the env-driven default no matter how a test exits.
class BspArenaTest : public ::testing::Test {
 protected:
  void TearDown() override { SetArenaEnabled(-1); }
};

TEST_F(BspArenaTest, ArenaOnOffResultsAreByteIdentical) {
  Graph g = Graph::FromEdges(SmallRmat(9), GraphDirections::kOutOnly);
  rt::PageRankOptions opt;
  opt.iterations = 4;
  SetArenaEnabled(0);
  auto heap = PageRank(g, opt, Config(2));
  SetArenaEnabled(1);
  auto arena = PageRank(g, opt, Config(2));
  ASSERT_EQ(heap.ranks.size(), arena.ranks.size());
  EXPECT_EQ(0, std::memcmp(heap.ranks.data(), arena.ranks.data(),
                           heap.ranks.size() * sizeof(double)));
  // Modeled costs are computed from counts, not allocations: identical.
  EXPECT_EQ(heap.metrics.bytes_sent, arena.metrics.bytes_sent);
  EXPECT_EQ(heap.metrics.messages_sent, arena.metrics.messages_sent);
  EXPECT_EQ(heap.metrics.memory_peak_bytes, arena.metrics.memory_peak_bytes);
  EXPECT_EQ(heap.metrics.memory_msgbuf_bytes, arena.metrics.memory_msgbuf_bytes);
}

TEST_F(BspArenaTest, ArenaCollapsesPerMessageHeapAllocations) {
  Graph g = Graph::FromEdges(SmallRmat(10), GraphDirections::kOutOnly);
  rt::PageRankOptions opt;
  opt.iterations = 4;

  SetArenaEnabled(0);
  ResetArenaCounters();
  PageRank(g, opt, Config(2));
  ArenaCounters heap = GetArenaCounters();
  EXPECT_GT(heap.boxed_requests, 0u);
  EXPECT_EQ(heap.heap_boxed, heap.boxed_requests);  // One malloc per message.
  EXPECT_EQ(heap.pool_slab_allocations, 0u);

  SetArenaEnabled(1);
  ResetArenaCounters();
  PageRank(g, opt, Config(2));
  ArenaCounters arena = GetArenaCounters();
  EXPECT_EQ(arena.boxed_requests, heap.boxed_requests);  // Same message count.
  EXPECT_EQ(arena.heap_boxed, 0u);
  ASSERT_GT(arena.pool_slab_allocations, 0u);
  // The tentpole claim: boxed messages per backing heap allocation >= 10x.
  EXPECT_GE(arena.boxed_requests / arena.pool_slab_allocations, 10u);
  // After the first superstep primes the free lists, later boxes recycle.
  EXPECT_GT(arena.pool_reused, arena.boxed_requests / 2);
}

TEST_F(BspArenaTest, CheckpointedRecoveryIsByteIdenticalUnderArena) {
  // Crash + restore exercises the snapshot boxing path through the arena.
  Graph g = Graph::FromEdges(SmallRmat(9), GraphDirections::kOutOnly);
  rt::PageRankOptions opt;
  opt.iterations = 4;
  auto faulty_config = [&] {
    rt::EngineConfig config = Config(2);
    auto spec = rt::fault::ParseFaultSpec("seed=7,ckpt=2,crash=1@3");
    MAZE_CHECK(spec.ok());
    config.faults = spec.value();
    return config;
  };
  SetArenaEnabled(1);
  auto clean = PageRank(g, opt, Config(2));
  auto recovered = PageRank(g, opt, faulty_config());
  ASSERT_EQ(clean.ranks.size(), recovered.ranks.size());
  EXPECT_EQ(0, std::memcmp(clean.ranks.data(), recovered.ranks.data(),
                           clean.ranks.size() * sizeof(double)));
  EXPECT_EQ(recovered.metrics.crash_restarts, 1u);
  SetArenaEnabled(0);
  auto recovered_heap = PageRank(g, opt, faulty_config());
  EXPECT_EQ(0, std::memcmp(clean.ranks.data(), recovered_heap.ranks.data(),
                           clean.ranks.size() * sizeof(double)));
}

TEST_F(BspArenaTest, PhasedSuperstepsWorkWithArena) {
  Graph g = Graph::FromEdges(SmallRmatOriented(9), GraphDirections::kOutOnly);
  uint64_t expected = native::ReferenceTriangleCount(g);
  for (int on : {0, 1}) {
    SetArenaEnabled(on);
    BspOptions split;
    split.superstep_phases = 10;
    auto result = TriangleCount(g, {}, Config(2), split);
    EXPECT_EQ(result.triangles, expected) << "arena=" << on;
  }
}

TEST(BspEngineTest, PageRankTrafficIsPerEdge) {
  // No combiner: PageRank traffic should scale with edges, exceeding the
  // per-(vertex, rank) volume a combining engine would ship.
  EdgeList el = SmallRmat(10, 8);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  rt::PageRankOptions opt;
  opt.iterations = 1;
  auto result = PageRank(g, opt, Config(2));
  uint64_t cross_rank_floor = g.num_edges() * 12 / 4;  // ~half edges cross, 12B.
  EXPECT_GT(result.metrics.bytes_sent, cross_rank_floor);
}

}  // namespace
}  // namespace maze::bsp
