// Connected-components (extension algorithm) tests: every engine must produce
// the canonical min-id labeling on every input, matching the flood-fill
// reference.
#include <gtest/gtest.h>

#include "bench_support/runner.h"
#include "core/graph.h"
#include "native/cc.h"
#include "tests/test_graphs.h"

namespace maze {
namespace {

EdgeList TwoTrianglesAndAnIsolate() {
  EdgeList el;
  el.num_vertices = 7;
  el.edges = {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}};  // 6 isolated.
  el.Symmetrize();
  return el;
}

TEST(ReferenceComponentsTest, LabelsAreMinIdPerComponent) {
  Graph g = Graph::FromEdges(TwoTrianglesAndAnIsolate(),
                             GraphDirections::kOutOnly);
  auto labels = native::ReferenceComponents(g);
  EXPECT_EQ(labels, (std::vector<VertexId>{0, 0, 0, 3, 3, 3, 6}));
  EXPECT_EQ(native::CountComponents(labels), 3u);
}

TEST(NativeCcTest, MatchesReferenceOnRmat) {
  EdgeList el = testgraphs::SmallRmatUndirected(9);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto result = native::ConnectedComponents(g, {}, rt::EngineConfig{});
  EXPECT_EQ(result.label, native::ReferenceComponents(g));
  EXPECT_EQ(result.num_components,
            native::CountComponents(native::ReferenceComponents(g)));
}

class NativeCcRanksTest : public ::testing::TestWithParam<int> {};

TEST_P(NativeCcRanksTest, RankCountDoesNotChangeLabels) {
  EdgeList el = testgraphs::SmallRmatUndirected(9);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  rt::EngineConfig config;
  config.num_ranks = GetParam();
  auto result = native::ConnectedComponents(g, {}, config);
  EXPECT_EQ(result.label, native::ReferenceComponents(g));
  if (GetParam() > 1) EXPECT_GT(result.metrics.bytes_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Ranks, NativeCcRanksTest, ::testing::Values(1, 2, 4));

// Every engine (through the bench dispatcher), single and multi rank.
struct CcCase {
  bench::EngineKind engine;
  int ranks;
};

std::string CcCaseName(const ::testing::TestParamInfo<CcCase>& info) {
  return std::string(bench::EngineName(info.param.engine)) + "_r" +
         std::to_string(info.param.ranks);
}

class CrossEngineCcTest : public ::testing::TestWithParam<CcCase> {};

TEST_P(CrossEngineCcTest, MatchesReference) {
  EdgeList el = testgraphs::SmallRmatUndirected(8, 4);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  bench::RunConfig config;
  config.num_ranks = GetParam().ranks;
  auto result =
      bench::RunConnectedComponents(GetParam().engine, el, {}, config);
  EXPECT_EQ(result.label, native::ReferenceComponents(g));
}

TEST_P(CrossEngineCcTest, HandlesDisconnectedPieces) {
  EdgeList el = TwoTrianglesAndAnIsolate();
  bench::RunConfig config;
  config.num_ranks = GetParam().ranks;
  auto result =
      bench::RunConnectedComponents(GetParam().engine, el, {}, config);
  EXPECT_EQ(result.num_components, 3u);
  EXPECT_EQ(result.label, (std::vector<VertexId>{0, 0, 0, 3, 3, 3, 6}));
}

std::vector<CcCase> CcCases() {
  std::vector<CcCase> cases;
  for (bench::EngineKind e : bench::AllEngines()) {
    cases.push_back({e, 1});
    if (e != bench::EngineKind::kTaskflow) cases.push_back({e, 4});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Engines, CrossEngineCcTest,
                         ::testing::ValuesIn(CcCases()), CcCaseName);

TEST(CcPropertyTest, LabelIsNeverLargerThanOwnId) {
  EdgeList el = testgraphs::SmallRmatUndirected(9, 6, 77);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto result = native::ConnectedComponents(g, {}, rt::EngineConfig{});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(result.label[v], v);
  }
}

TEST(CcPropertyTest, EndpointsShareLabels) {
  EdgeList el = testgraphs::SmallRmatUndirected(9, 6, 78);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto result = native::ConnectedComponents(g, {}, rt::EngineConfig{});
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      ASSERT_EQ(result.label[u], result.label[v]);
    }
  }
}

}  // namespace
}  // namespace maze
