// CLI command-surface tests: parsing, format dispatch, error reporting, and
// end-to-end generate/convert/stats/run flows through the library entry point.
#include "cli/cli.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/datasets.h"
#include "core/io.h"
#include "tests/json_checker.h"
#include "tests/openmetrics_checker.h"
#include "util/thread_pool.h"

namespace maze::cli {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Status RunCli(std::initializer_list<std::string> args, std::string* output) {
  std::ostringstream out;
  Status status = RunCommand(std::vector<std::string>(args), out);
  *output = out.str();
  return status;
}

TEST(CliTest, EmptyCommandIsUsageError) {
  std::string out;
  Status s = RunCli({}, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("usage"), std::string::npos);
}

TEST(CliTest, UnknownCommandRejected) {
  std::string out;
  EXPECT_EQ(RunCli({"frobnicate"}, &out).code(), StatusCode::kInvalidArgument);
}

TEST(CliTest, FlagWithoutValueRejected) {
  std::string out;
  Status s = RunCli({"generate", "--scale"}, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CliTest, NonIntegerFlagRejected) {
  std::string out;
  Status s = RunCli({"generate", "--scale", "large", "--out", "/tmp/x.txt"}, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("integer"), std::string::npos);
}

TEST(CliTest, GenerateRequiresOut) {
  std::string out;
  EXPECT_EQ(RunCli({"generate", "--scale", "8"}, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(CliTest, GenerateStatsRoundTrip) {
  std::string path = TempPath("cli_graph.txt");
  std::string out;
  ASSERT_TRUE(RunCli({"generate", "--kind", "graph", "--scale", "8", "--out",
                   path},
                  &out)
                  .ok());
  EXPECT_NE(out.find("wrote"), std::string::npos);
  ASSERT_TRUE(RunCli({"stats", path}, &out).ok());
  EXPECT_NE(out.find("vertices"), std::string::npos);
  EXPECT_NE(out.find("256"), std::string::npos);  // 2^8 vertices.
  std::remove(path.c_str());
}

TEST(CliTest, ConvertAcrossAllFormats) {
  std::string txt = TempPath("cli_a.txt");
  std::string bin = TempPath("cli_a.bin");
  std::string mtx = TempPath("cli_a.mtx");
  std::string out;
  ASSERT_TRUE(
      RunCli({"generate", "--kind", "graph", "--scale", "7", "--out", txt}, &out)
          .ok());
  ASSERT_TRUE(RunCli({"convert", txt, bin}, &out).ok());
  ASSERT_TRUE(RunCli({"convert", bin, mtx}, &out).ok());
  ASSERT_TRUE(RunCli({"convert", mtx, TempPath("cli_b.txt")}, &out).ok());
  auto original = ReadEdgeListText(txt);
  auto round_tripped = ReadEdgeListText(TempPath("cli_b.txt"));
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(round_tripped.ok());
  EXPECT_EQ(original.value().edges, round_tripped.value().edges);
  for (const std::string& p : {txt, bin, mtx, TempPath("cli_b.txt")}) {
    std::remove(p.c_str());
  }
}

TEST(CliTest, ConvertUnknownExtensionRejected) {
  std::string out;
  Status s = RunCli({"convert", "in.json", "out.txt"}, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CliTest, DatasetsListsRegistry) {
  std::string out;
  ASSERT_TRUE(RunCli({"datasets"}, &out).ok());
  EXPECT_NE(out.find("facebook"), std::string::npos);
  EXPECT_NE(out.find("yahoomusic"), std::string::npos);
}

TEST(CliTest, RunPageRankOnGeneratedFile) {
  std::string path = TempPath("cli_run.bin");
  std::string out;
  ASSERT_TRUE(
      RunCli({"generate", "--kind", "graph", "--scale", "8", "--out", path}, &out)
          .ok());
  ASSERT_TRUE(RunCli({"run", "--algo", "pagerank", "--engine", "native",
                   "--input", path, "--iterations", "3"},
                  &out)
                  .ok());
  EXPECT_NE(out.find("pagerank: 3 iterations"), std::string::npos);
  EXPECT_NE(out.find("engine=native"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, FlagEqualsValueSyntax) {
  std::string path = TempPath("cli_eq.txt");
  std::string out;
  ASSERT_TRUE(RunCli({"generate", "--kind=graph", "--scale=8", "--out=" + path},
                  &out)
                  .ok())
      << out;
  ASSERT_TRUE(RunCli({"run", "--algo=pagerank", "--engine=native",
                   "--input=" + path, "--iterations=2"},
                  &out)
                  .ok())
      << out;
  EXPECT_NE(out.find("pagerank: 2 iterations"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, RunWithTraceWritesChromeTrace) {
  std::string graph = TempPath("cli_trace_graph.txt");
  std::string trace = TempPath("cli_trace.json");
  std::string out;
  ASSERT_TRUE(RunCli({"generate", "--kind", "graph", "--scale", "8", "--out",
                   graph},
                  &out)
                  .ok());
  ASSERT_TRUE(RunCli({"run", "--algo", "pagerank", "--engine", "all", "--ranks",
                   "2", "--iterations", "2", "--input", graph,
                   "--trace=" + trace},
                  &out)
                  .ok())
      << out;
  EXPECT_NE(out.find("trace: wrote"), std::string::npos);

  std::string json;
  {
    FILE* f = std::fopen(trace.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, n);
    std::fclose(f);
  }
  // Spans from several engine families land in one trace, plus simulated wire
  // spans on the synthetic pids.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"native\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"vertexlab\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"matblas\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"datalite\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"bspgraph\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":10000"), std::string::npos);
  std::remove(graph.c_str());
  std::remove(trace.c_str());
}

std::string Slurp(const std::string& path) {
  std::string content;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

TEST(CliTest, RunWithExplainWritesAttributionAndPrintsMarkdown) {
  std::string graph = TempPath("cli_explain_graph.txt");
  std::string explain = TempPath("cli_explain.json");
  std::string out;
  ASSERT_TRUE(RunCli({"generate", "--kind", "graph", "--scale", "8", "--out",
                   graph},
                  &out)
                  .ok());
  ASSERT_TRUE(RunCli({"run", "--algo", "pagerank", "--engine", "all", "--ranks",
                   "2", "--iterations", "2", "--input", graph,
                   "--explain=" + explain},
                  &out)
                  .ok())
      << out;
  EXPECT_NE(out.find("explain: wrote"), std::string::npos);
  // The markdown table: one row per engine with a verdict column.
  EXPECT_NE(out.find("# Time attribution (critical path)"), std::string::npos);
  EXPECT_NE(out.find("| native |"), std::string::npos);
  EXPECT_NE(out.find("| bspgraph |"), std::string::npos);
  EXPECT_NE(out.find("-bound"), std::string::npos);

  std::string json = Slurp(explain);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_wire_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"what_if\""), std::string::npos);
  EXPECT_NE(json.find("\"binding_term\""), std::string::npos);
  std::remove(graph.c_str());
  std::remove(explain.c_str());
}

TEST(CliTest, RunMetricsJsonIncludesAttributionBlock) {
  std::string graph = TempPath("cli_attrib_graph.txt");
  std::string metrics = TempPath("cli_attrib_metrics.json");
  std::string out;
  ASSERT_TRUE(RunCli({"generate", "--kind", "graph", "--scale", "8", "--out",
                   graph},
                  &out)
                  .ok());
  ASSERT_TRUE(RunCli({"run", "--algo", "pagerank", "--engine", "native",
                   "--ranks", "2", "--iterations", "2", "--input", graph,
                   "--metrics=" + metrics},
                  &out)
                  .ok())
      << out;
  std::string json = Slurp(metrics);
  EXPECT_NE(json.find("\"resource\""), std::string::npos);
  EXPECT_NE(json.find("\"attribution\""), std::string::npos);
  EXPECT_NE(json.find("\"components\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\""), std::string::npos);
  std::remove(graph.c_str());
  std::remove(metrics.c_str());
}

TEST(CliTest, TraceIncludesCriticalPathTrack) {
  std::string graph = TempPath("cli_crit_graph.txt");
  std::string trace = TempPath("cli_crit_trace.json");
  std::string out;
  ASSERT_TRUE(RunCli({"generate", "--kind", "graph", "--scale", "8", "--out",
                   graph},
                  &out)
                  .ok());
  ASSERT_TRUE(RunCli({"run", "--algo", "pagerank", "--engine", "native",
                   "--ranks", "2", "--iterations", "2", "--input", graph,
                   "--trace=" + trace},
                  &out)
                  .ok())
      << out;
  std::string json = Slurp(trace);
  EXPECT_NE(json.find("critical path (modeled)"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":20000"), std::string::npos);
  EXPECT_NE(json.find("\"binding_rank\""), std::string::npos);
  std::remove(graph.c_str());
  std::remove(trace.c_str());
}

TEST(CliTest, RunNeedsInputOrDataset) {
  std::string out;
  Status s = RunCli({"run", "--algo", "bfs", "--engine", "native"}, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CliTest, RunRejectsUnknownEngineAndAlgo) {
  std::string out;
  EXPECT_FALSE(
      RunCli({"run", "--algo", "pagerank", "--engine", "spark", "--dataset",
           "facebook"},
          &out)
          .ok());
  EXPECT_FALSE(RunCli({"run", "--algo", "pagerink", "--engine", "native",
                    "--dataset", "facebook"},
                   &out)
                   .ok());
}

TEST(CliTest, UnknownEngineErrorListsValidNames) {
  std::string out;
  Status s = RunCli({"run", "--algo", "pagerank", "--engine", "spark",
                  "--dataset", "facebook"},
                 &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The message enumerates the registry so a typo is actionable.
  EXPECT_NE(s.message().find("spark"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("native"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("gmat"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("taskflow"), std::string::npos) << s.message();
}

TEST(CliTest, RunGmatEngineOnDatasetStandin) {
  std::string out;
  ASSERT_TRUE(RunCli({"run", "--algo", "pagerank", "--engine", "gmat",
                   "--dataset", "facebook", "--iterations", "2", "--ranks",
                   "4"},
                  &out)
                  .ok())
      << out;
  EXPECT_NE(out.find("engine=gmat"), std::string::npos) << out;
}

TEST(CliTest, EngineAllIncludesGmat) {
  std::string graph = TempPath("cli_engine_all_gmat.txt");
  std::string out;
  ASSERT_TRUE(RunCli({"generate", "--kind", "graph", "--scale", "7", "--out",
                   graph},
                  &out)
                  .ok());
  ASSERT_TRUE(RunCli({"run", "--algo", "pagerank", "--engine", "all", "--ranks",
                   "4", "--iterations", "2", "--input", graph},
                  &out)
                  .ok())
      << out;
  // The registry-driven sweep covers all seven engines, gmat included.
  EXPECT_NE(out.find("engine=gmat"), std::string::npos) << out;
  EXPECT_NE(out.find("engine=native"), std::string::npos) << out;
  std::remove(graph.c_str());
}

TEST(CliTest, RunTrianglesOnDatasetStandin) {
  std::string out;
  // Uses the registry stand-in path (scaled down inside the CLI).
  ASSERT_TRUE(RunCli({"run", "--algo", "triangles", "--engine", "taskflow",
                   "--dataset", "facebook"},
                  &out)
                  .ok())
      << out;
  EXPECT_NE(out.find("triangles:"), std::string::npos);
}

TEST(CliTest, RunUnknownDatasetIsNotFoundWithValidNames) {
  std::string out;
  Status s = RunCli({"run", "--algo", "pagerank", "--engine", "native",
                  "--dataset", "ghost"},
                 &out);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  // The error names valid alternatives so the listing is actionable.
  EXPECT_NE(s.message().find("facebook"), std::string::npos) << s.ToString();
}

TEST(CliTest, RunGraphAlgoOnRatingsDatasetIsInvalid) {
  std::string out;
  Status s = RunCli({"run", "--algo", "pagerank", "--engine", "native",
                  "--dataset", "netflix"},
                 &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CliTest, RunCfOnGraphDatasetIsInvalid) {
  std::string out;
  Status s = RunCli({"run", "--algo", "cf", "--engine", "native", "--dataset",
                  "facebook"},
                 &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CliTest, ThreadsFlagResizesDefaultPool) {
  unsigned before = ThreadPool::Default().num_threads();
  std::string out;
  ASSERT_TRUE(RunCli({"run", "--algo", "pagerank", "--engine", "native",
                   "--iterations", "2", "--dataset", "facebook", "--threads",
                   "3"},
                  &out)
                  .ok())
      << out;
  EXPECT_NE(out.find("threads: 3"), std::string::npos) << out;
  EXPECT_EQ(ThreadPool::Default().num_threads(), 3u);
  ThreadPool::Default().Resize(before);  // Restore for other tests.
}

TEST(CliTest, ThreadsFlagRejectsNonPositive) {
  std::string out;
  Status s = RunCli({"run", "--algo", "pagerank", "--engine", "native",
                  "--dataset", "facebook", "--threads", "0"},
                 &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("threads"), std::string::npos);
}

TEST(CliTest, ServeNeedsScript) {
  std::string out;
  Status s = RunCli({"serve"}, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("script"), std::string::npos);
}

TEST(CliTest, ServeRunsScriptAndWritesReport) {
  std::string script_path = TempPath("cli_serve_script.txt");
  {
    std::ofstream f(script_path);
    f << "load g dataset=facebook scale_adjust=-6\n"
      << "run algo=pagerank engine=native snapshot=g iterations=2 repeat=2\n"
      << "wait\n"
      << "report\n";
  }
  std::string report_path = TempPath("cli_serve_report.json");
  std::string out;
  ASSERT_TRUE(RunCli({"serve", "--script", script_path, "--workers", "2",
                   "--report", report_path},
                  &out)
                  .ok())
      << out;
  EXPECT_NE(out.find("load g: epoch 1"), std::string::npos) << out;
  EXPECT_NE(out.find("[0] ok pagerank"), std::string::npos) << out;
  EXPECT_NE(out.find("# Service report"), std::string::npos) << out;
  std::string json = Slurp(report_path);
  EXPECT_NE(json.find("\"submitted\": 2"), std::string::npos) << json;
  std::remove(script_path.c_str());
  std::remove(report_path.c_str());
}

TEST(CliTest, ServeRejectsBadOptionValues) {
  std::string out;
  EXPECT_EQ(RunCli({"serve", "--script", "/nonexistent", "--queue-depth", "0"},
                &out)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunCli({"serve", "--script", "/nonexistent", "--workers", "0"},
                &out)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      RunCli({"serve", "--script", "/nonexistent/x.txt"}, &out).code(),
      StatusCode::kIoError);
}

TEST(CliTest, ServeListenSloAndScrapeFile) {
  std::string script_path = TempPath("cli_serve_telemetry_script.txt");
  std::string metrics_path = TempPath("cli_serve_scrape.om");
  {
    std::ofstream f(script_path);
    f << "load g dataset=facebook scale_adjust=-6\n"
      << "run algo=pagerank engine=native snapshot=g iterations=2 "
         "faults=seed=1,straggle=0x64\n"
      << "wait\n"
      << "scrape file=" << metrics_path << "\n";
  }
  std::string out;
  // --listen 0 binds an ephemeral port; --slo-p99-ms arms the watchdog (its
  // stderr events are not asserted here — bench_telemetry byte-checks them).
  ASSERT_TRUE(RunCli({"serve", "--script", script_path, "--listen", "0",
                   "--slo-p99-ms", "0.001", "--slo-burn", "2"},
                  &out)
                  .ok())
      << out;
  EXPECT_NE(out.find("telemetry: listening on 127.0.0.1:"), std::string::npos)
      << out;
  EXPECT_NE(out.find("scrape 1"), std::string::npos) << out;
  std::string exposition = Slurp(metrics_path);
  testutil::OpenMetricsChecker checker(exposition);
  EXPECT_TRUE(checker.Valid()) << checker.error();
  EXPECT_EQ(checker.counters().count("maze_serve_submitted"), 1u)
      << exposition;
  std::remove(script_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(CliTest, ServeMetricsFlagWritesFinalTelemetryJson) {
  std::string script_path = TempPath("cli_serve_metrics_script.txt");
  std::string metrics_path = TempPath("cli_serve_metrics.json");
  {
    std::ofstream f(script_path);
    f << "load g dataset=facebook scale_adjust=-6\n"
      << "run algo=pagerank engine=native snapshot=g iterations=2 repeat=2\n"
      << "wait\n"
      << "scrape\n"
      << "bills\n";
  }
  std::string out;
  ASSERT_TRUE(
      RunCli({"serve", "--script", script_path, "--metrics", metrics_path},
             &out)
          .ok())
      << out;
  EXPECT_NE(out.find("metrics: wrote " + metrics_path), std::string::npos)
      << out;
  EXPECT_NE(out.find("conserved=yes"), std::string::npos) << out;
  std::string json = Slurp(metrics_path);
  EXPECT_TRUE(testutil::JsonChecker(json).Valid()) << json;
  // The artifact bundles the final service report with the telemetry rings:
  // counter, gauge, and histogram series with their per-scrape windows.
  EXPECT_NE(json.find("\"report\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"bills\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"telemetry\""), std::string::npos) << json;
  EXPECT_NE(json.find("serve.queue_depth"), std::string::npos) << json;
  EXPECT_NE(json.find("\"windows\""), std::string::npos) << json;
  std::remove(script_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(CliTest, ServeSloDumpWritesForensicsOnTrip) {
  std::string script_path = TempPath("cli_serve_dump_script.txt");
  std::string dump_path = TempPath("cli_serve_slo_dump.json");
  {
    std::ofstream f(script_path);
    // 1 us target: the execution window trips the watchdog at its scrape.
    f << "load g dataset=facebook scale_adjust=-6\n"
      << "run algo=pagerank engine=native snapshot=g iterations=2\n"
      << "wait\n"
      << "scrape\n";
  }
  std::string out;
  ASSERT_TRUE(RunCli({"serve", "--script", script_path, "--slo-p99-ms",
                   "0.001", "--slo-dump", dump_path},
                  &out)
                  .ok())
      << out;
  std::string dump = Slurp(dump_path);
  EXPECT_TRUE(testutil::JsonChecker(dump).Valid()) << dump;
  EXPECT_NE(dump.find("\"event\": \"slo_trip\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"request_id\": 1"), std::string::npos) << dump;
  std::remove(script_path.c_str());
  std::remove(dump_path.c_str());

  // The forensics flags only make sense with an armed watchdog.
  EXPECT_EQ(RunCli({"serve", "--script", script_path, "--slo-dump", "x.json"},
                &out)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      RunCli({"serve", "--script", script_path, "--slo-perfetto", "x.json"},
             &out)
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(CliTest, ServeRejectsBadTelemetryFlags) {
  std::string out;
  EXPECT_EQ(RunCli({"serve", "--script", "/nonexistent", "--listen", "abc"},
                &out)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunCli({"serve", "--script", "/nonexistent", "--listen", "70000"},
                &out)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      RunCli({"serve", "--script", "/nonexistent", "--slo-p99-ms", "0"}, &out)
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      RunCli({"serve", "--script", "/nonexistent", "--slo-p99-ms", "x"}, &out)
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      RunCli({"serve", "--script", "/nonexistent", "--slo-burn", "-1"}, &out)
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(CliTest, DatasetsListsEveryRegistryEntry) {
  std::string out;
  ASSERT_TRUE(RunCli({"datasets"}, &out).ok());
  for (const DatasetInfo& info : AllDatasets()) {
    EXPECT_NE(out.find(info.name), std::string::npos)
        << "missing " << info.name << " in:\n" << out;
  }
}

TEST(CliTest, GenerateRatings) {
  std::string path = TempPath("cli_ratings.txt");
  std::string out;
  ASSERT_TRUE(RunCli({"generate", "--kind", "ratings", "--scale", "9", "--items",
                   "64", "--out", path},
                  &out)
                  .ok());
  EXPECT_NE(out.find("ratings"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace maze::cli
