#include "util/codec.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/prng.h"

namespace maze {
namespace {

TEST(VarintTest, RoundTripBoundaries) {
  std::vector<uint32_t> values = {0,       1,          127,        128,
                                  16383,   16384,      2097151,    2097152,
                                  1u << 28, 0xFFFFFFFFu};
  std::vector<uint8_t> buf;
  for (uint32_t v : values) PutVarint32(&buf, v);
  size_t pos = 0;
  for (uint32_t v : values) {
    EXPECT_EQ(GetVarint32(buf, &pos), v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::vector<uint8_t> buf;
  PutVarint32(&buf, 100);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(DeltaCodecTest, RoundTripSortsIds) {
  std::vector<uint32_t> ids = {500, 3, 77, 77, 12, 9000};
  std::vector<uint8_t> buf;
  DeltaEncodeIds(ids, &buf);
  std::vector<uint32_t> decoded;
  DeltaDecodeIds(buf, &decoded);
  std::vector<uint32_t> expected = ids;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(decoded, expected);
}

TEST(DeltaCodecTest, EmptyList) {
  std::vector<uint8_t> buf;
  DeltaEncodeIds({}, &buf);
  std::vector<uint32_t> decoded;
  DeltaDecodeIds(buf, &decoded);
  EXPECT_TRUE(decoded.empty());
}

TEST(DeltaCodecTest, DenseIdsCompressWell) {
  // Consecutive ids: one byte for the first delta-base plus one byte per id.
  std::vector<uint32_t> ids;
  for (uint32_t i = 1000; i < 2000; ++i) ids.push_back(i);
  std::vector<uint8_t> buf;
  DeltaEncodeIds(ids, &buf);
  // 4000 raw bytes must shrink below 1.3 KB.
  EXPECT_LT(buf.size(), 1300u);
}

TEST(DeltaCodecTest, SparseRandomIdsStillRoundTrip) {
  Xorshift64Star rng(7);
  std::vector<uint32_t> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(static_cast<uint32_t>(rng.NextBounded(1u << 30)));
  }
  std::vector<uint8_t> buf;
  DeltaEncodeIds(ids, &buf);
  std::vector<uint32_t> decoded;
  DeltaDecodeIds(buf, &decoded);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(decoded, ids);
}

TEST(BestCodecTest, PicksBitvectorForDenseRange) {
  // All ids within a small range and dense: the bitvector encoding wins.
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 4096; i += 2) ids.push_back(1000000 + i);
  std::vector<uint8_t> buf;
  EncodeIdsBest(ids, &buf);
  EXPECT_EQ(buf[0], 1);  // Bitvector tag.
  std::vector<uint32_t> decoded;
  DecodeIdsBest(buf, &decoded);
  EXPECT_EQ(decoded, ids);
}

TEST(BestCodecTest, PicksDeltaForSparseIds) {
  std::vector<uint32_t> ids = {5, 100000, 4000000, 90000000};
  std::vector<uint8_t> buf;
  EncodeIdsBest(ids, &buf);
  EXPECT_EQ(buf[0], 0);  // Delta tag.
  std::vector<uint32_t> decoded;
  DecodeIdsBest(buf, &decoded);
  EXPECT_EQ(decoded, ids);
}

TEST(BestCodecTest, EmptyInput) {
  std::vector<uint8_t> buf;
  EncodeIdsBest({}, &buf);
  std::vector<uint32_t> decoded;
  DecodeIdsBest(buf, &decoded);
  EXPECT_TRUE(decoded.empty());
}

TEST(BestCodecTest, SingleId) {
  std::vector<uint8_t> buf;
  EncodeIdsBest({42}, &buf);
  std::vector<uint32_t> decoded;
  DecodeIdsBest(buf, &decoded);
  EXPECT_EQ(decoded, std::vector<uint32_t>{42});
}

// Property sweep: random id sets of various densities always round-trip through
// the best-of codec.
class BestCodecPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BestCodecPropertyTest, RoundTrip) {
  int density_pow = GetParam();
  Xorshift64Star rng(31 + density_pow);
  uint32_t range = 1u << density_pow;
  std::vector<uint32_t> ids;
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(static_cast<uint32_t>(rng.NextBounded(range)));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::vector<uint8_t> buf;
  EncodeIdsBest(ids, &buf);
  std::vector<uint32_t> decoded;
  DecodeIdsBest(buf, &decoded);
  EXPECT_EQ(decoded, ids);
}

INSTANTIATE_TEST_SUITE_P(Densities, BestCodecPropertyTest,
                         ::testing::Values(8, 11, 14, 17, 20, 24, 28));

}  // namespace
}  // namespace maze
