// Cross-engine consistency: every framework engine must produce the same
// *answers* as the serial reference on the same inputs — the gaps the study
// measures are in performance, never in results. Exercised through the bench
// harness dispatcher so the benchmark code path itself is covered.
#include "bench_support/runner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/graph.h"
#include "core/weighted_graph.h"
#include "native/cf.h"
#include "native/reference.h"
#include "native/sssp.h"
#include "tests/test_graphs.h"

namespace maze::bench {
namespace {

struct Case {
  EngineKind engine;
  int ranks;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  return std::string(EngineName(info.param.engine)) + "_r" +
         std::to_string(info.param.ranks);
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (EngineKind e : AllEngines()) {
    cases.push_back({e, 1});
    if (e != EngineKind::kTaskflow) {
      cases.push_back({e, 4});
      cases.push_back({e, 16});
    }
  }
  return cases;
}

// Engines with an SSSP implementation (weighted graphs are an extension; see
// EngineSupportsSssp).
std::vector<Case> SsspCases() {
  std::vector<Case> cases;
  for (const Case& c : AllCases()) {
    if (EngineSupportsSssp(c.engine)) cases.push_back(c);
  }
  return cases;
}

class CrossEngineTest : public ::testing::TestWithParam<Case> {};

TEST_P(CrossEngineTest, PageRankMatchesReference) {
  EdgeList el = testgraphs::SmallRmat(9);
  Graph g = Graph::FromEdges(el, GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 4;
  RunConfig config;
  config.num_ranks = GetParam().ranks;
  auto result = RunPageRank(GetParam().engine, el, opt, config);
  auto expected = native::ReferencePageRank(g, 4, opt.jump);
  ASSERT_EQ(result.ranks.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], expected[v], 1e-9)
        << EngineName(GetParam().engine) << " vertex " << v;
  }
}

TEST_P(CrossEngineTest, BfsMatchesReference) {
  EdgeList el = testgraphs::SmallRmatUndirected(9);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  RunConfig config;
  config.num_ranks = GetParam().ranks;
  auto result = RunBfs(GetParam().engine, el, rt::BfsOptions{3}, config);
  EXPECT_EQ(result.distance, native::ReferenceBfs(g, 3));
}

TEST_P(CrossEngineTest, TriangleCountMatchesReference) {
  EdgeList el = testgraphs::SmallRmatOriented(9);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  RunConfig config;
  config.num_ranks = GetParam().ranks;
  auto result = RunTriangleCount(GetParam().engine, el, {}, config);
  EXPECT_EQ(result.triangles, native::ReferenceTriangleCount(g));
}

TEST_P(CrossEngineTest, CfConverges) {
  BipartiteGraph g = testgraphs::SmallRatings(9).ToGraph();
  rt::CfOptions opt;
  opt.k = 4;
  opt.iterations = 4;
  opt.method = rt::CfMethod::kGd;
  RunConfig config;
  config.num_ranks = GetParam().ranks;
  auto result = RunCf(GetParam().engine, g, opt, config);
  double initial = native::CfRmse(g, [&] {
    std::vector<double> init;
    native::CfInitFactors(g.num_users(), opt.k, opt.seed, &init);
    return init;
  }(), [&] {
    std::vector<double> init;
    native::CfInitFactors(g.num_items(), opt.k, opt.seed ^ 0x1234567ull, &init);
    return init;
  }(), opt.k);
  EXPECT_LT(result.final_rmse, initial);
}

INSTANTIATE_TEST_SUITE_P(Engines, CrossEngineTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

class SsspEngineTest : public ::testing::TestWithParam<Case> {};

TEST_P(SsspEngineTest, SsspMatchesDijkstra) {
  EdgeList el = testgraphs::SmallRmatUndirected(9, 6, 7);
  WeightedGraph g = WeightedGraph::FromEdgesWithRandomWeights(el, 8.0f, 7);
  RunConfig config;
  config.num_ranks = GetParam().ranks;
  auto result = RunSssp(GetParam().engine, g, rt::SsspOptions{3}, config);
  auto expected = native::ReferenceDijkstra(g, 3);
  ASSERT_EQ(result.distance.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(result.distance[v])) << "vertex " << v;
    } else {
      EXPECT_NEAR(result.distance[v], expected[v], 1e-4) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, SsspEngineTest,
                         ::testing::ValuesIn(SsspCases()), CaseName);

// --- Degenerate graph shapes --------------------------------------------------
// Empty edge sets, dangling sinks, and self-loops must come out identical on
// every engine; these shapes stress the frontier bookkeeping each engine keeps
// differently.

class EdgeCaseTest : public ::testing::TestWithParam<Case> {};

TEST_P(EdgeCaseTest, PageRankOnEdgelessGraph) {
  EdgeList el;
  el.num_vertices = 16;
  Graph g = Graph::FromEdges(el, GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 3;
  RunConfig config;
  config.num_ranks = GetParam().ranks;
  auto result = RunPageRank(GetParam().engine, el, opt, config);
  auto expected = native::ReferencePageRank(g, 3, opt.jump);
  ASSERT_EQ(result.ranks.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], expected[v], 1e-12) << "vertex " << v;
  }
}

TEST_P(EdgeCaseTest, PageRankWithDanglingAndSelfLoops) {
  // 0→0 self-loop, a path into sink 3 (dangling), isolated 5, 6→6 plus 6→1.
  EdgeList el;
  el.num_vertices = 7;
  el.edges = {{0, 0}, {0, 1}, {1, 2}, {2, 3}, {4, 3}, {6, 6}, {6, 1}};
  Graph g = Graph::FromEdges(el, GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 5;
  RunConfig config;
  config.num_ranks = GetParam().ranks;
  auto result = RunPageRank(GetParam().engine, el, opt, config);
  auto expected = native::ReferencePageRank(g, 5, opt.jump);
  ASSERT_EQ(result.ranks.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], expected[v], 1e-12) << "vertex " << v;
  }
}

TEST_P(EdgeCaseTest, BfsWithSelfLoopsAndUnreachable) {
  // Symmetric component {0,1,2} with a self-loop at 1; {3,4} unreachable from 0.
  EdgeList el;
  el.num_vertices = 6;
  el.edges = {{0, 1}, {1, 0}, {1, 1}, {1, 2}, {2, 1}, {3, 4}, {4, 3}};
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  RunConfig config;
  config.num_ranks = GetParam().ranks;
  auto result = RunBfs(GetParam().engine, el, rt::BfsOptions{0}, config);
  EXPECT_EQ(result.distance, native::ReferenceBfs(g, 0));
}

TEST_P(EdgeCaseTest, ConnectedComponentsOnEdgelessGraph) {
  EdgeList el;
  el.num_vertices = 9;
  RunConfig config;
  config.num_ranks = GetParam().ranks;
  auto result = RunConnectedComponents(GetParam().engine, el, {}, config);
  EXPECT_EQ(result.num_components, 9u);
  for (VertexId v = 0; v < 9; ++v) EXPECT_EQ(result.label[v], v);
}

INSTANTIATE_TEST_SUITE_P(Engines, EdgeCaseTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

TEST(RunnerTest, EngineNamesAreUnique) {
  std::vector<std::string> names;
  for (EngineKind e : AllEngines()) names.push_back(EngineName(e));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  EXPECT_EQ(names.size(), 7u);
}

TEST(RunnerTest, MatblasRanksRoundsToSquares) {
  EXPECT_EQ(MatblasRanks(1), 1);
  EXPECT_EQ(MatblasRanks(2), 1);
  EXPECT_EQ(MatblasRanks(4), 4);
  EXPECT_EQ(MatblasRanks(8), 4);
  EXPECT_EQ(MatblasRanks(9), 9);
  EXPECT_EQ(MatblasRanks(63), 49);
  EXPECT_EQ(MatblasRanks(64), 64);
}

TEST(RunnerTest, MultiNodeEnginesExcludeTaskflow) {
  for (EngineKind e : MultiNodeEngines()) {
    EXPECT_NE(e, EngineKind::kTaskflow);
  }
  EXPECT_EQ(MultiNodeEngines().size(), 6u);
}

TEST(RunnerTest, PerformanceOrderingOnSingleNodePageRank) {
  // The study's qualitative single-node finding (Table 5): native is fastest
  // and bspgraph is the slowest engine, by a wide margin.
  EdgeList el = testgraphs::SmallRmat(11);
  rt::PageRankOptions opt;
  opt.iterations = 3;
  RunConfig config;
  auto native_r = RunPageRank(EngineKind::kNative, el, opt, config);
  auto bsp_r = RunPageRank(EngineKind::kBspgraph, el, opt, config);
  EXPECT_GT(bsp_r.metrics.elapsed_seconds,
            native_r.metrics.elapsed_seconds * 3);
}

}  // namespace
}  // namespace maze::bench
