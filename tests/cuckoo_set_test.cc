#include "util/cuckoo_set.h"

#include <set>

#include <gtest/gtest.h>

#include "util/prng.h"

namespace maze {
namespace {

TEST(CuckooSetTest, InsertAndContains) {
  CuckooSet set;
  EXPECT_FALSE(set.Contains(5));
  EXPECT_TRUE(set.Insert(5));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(6));
  EXPECT_EQ(set.size(), 1u);
}

TEST(CuckooSetTest, DuplicateInsertReturnsFalse) {
  CuckooSet set;
  EXPECT_TRUE(set.Insert(9));
  EXPECT_FALSE(set.Insert(9));
  EXPECT_EQ(set.size(), 1u);
}

TEST(CuckooSetTest, GrowsPastInitialCapacity) {
  CuckooSet set(4);
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(set.Insert(i * 7 + 1));
  }
  EXPECT_EQ(set.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(set.Contains(i * 7 + 1));
  }
  EXPECT_FALSE(set.Contains(3));
}

TEST(CuckooSetTest, MatchesStdSetUnderRandomWorkload) {
  CuckooSet set;
  std::set<uint32_t> model;
  Xorshift64Star rng(99);
  for (int i = 0; i < 20000; ++i) {
    uint32_t key = static_cast<uint32_t>(rng.NextBounded(5000)) + 1;
    bool inserted = set.Insert(key);
    bool model_inserted = model.insert(key).second;
    ASSERT_EQ(inserted, model_inserted) << "key " << key;
  }
  ASSERT_EQ(set.size(), model.size());
  for (uint32_t key = 1; key <= 5000; ++key) {
    ASSERT_EQ(set.Contains(key), model.count(key) == 1) << "key " << key;
  }
}

TEST(CuckooSetTest, AdversarialSequentialKeys) {
  // Sequential keys stress one hash function's distribution.
  CuckooSet set;
  for (uint32_t i = 0; i < 100000; ++i) ASSERT_TRUE(set.Insert(i));
  EXPECT_EQ(set.size(), 100000u);
  EXPECT_TRUE(set.Contains(0));
  EXPECT_TRUE(set.Contains(99999));
  EXPECT_FALSE(set.Contains(100000));
}

TEST(CuckooSetTest, MemoryBytesGrowsWithRehash) {
  CuckooSet set;
  size_t initial = set.MemoryBytes();
  for (uint32_t i = 0; i < 10000; ++i) set.Insert(i);
  EXPECT_GT(set.MemoryBytes(), initial);
}

}  // namespace
}  // namespace maze
