#include "datalog/algorithms.h"

#include <gtest/gtest.h>

#include "datalog/engine.h"
#include "datalog/table.h"
#include "native/cf.h"
#include "native/reference.h"
#include "tests/test_graphs.h"

namespace maze::datalog {
namespace {

using testgraphs::SmallRmat;
using testgraphs::SmallRmatOriented;
using testgraphs::SmallRmatUndirected;

rt::EngineConfig Config(int ranks = 1) {
  rt::EngineConfig config;
  config.num_ranks = ranks;
  config.comm = DefaultComm();
  return config;
}

// --- Table ---------------------------------------------------------------------

TEST(TableTest, AppendAndRead) {
  Table t("T", 2, 1);
  int64_t r1[2] = {3, 7};
  double d1[1] = {1.5};
  t.AppendRow(r1, d1);
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.Int(0, 0), 3);
  EXPECT_EQ(t.Int(0, 1), 7);
  EXPECT_DOUBLE_EQ(t.Double(0, 0), 1.5);
}

TEST(TableTest, TailNestGroupsAndSorts) {
  Table t("EDGE", 2, 0);
  for (auto [a, b] : std::vector<std::pair<int64_t, int64_t>>{
           {2, 9}, {0, 5}, {2, 3}, {0, 1}, {2, 7}}) {
    int64_t row[2] = {a, b};
    t.AppendRow(row);
  }
  t.TailNest(3);
  auto [b0, e0] = t.Rows(0);
  EXPECT_EQ(e0 - b0, 2u);
  EXPECT_EQ(t.Int(b0, 1), 1);
  EXPECT_EQ(t.Int(b0 + 1, 1), 5);
  auto [b1, e1] = t.Rows(1);
  EXPECT_EQ(e1 - b1, 0u);
  auto [b2, e2] = t.Rows(2);
  EXPECT_EQ(e2 - b2, 3u);
  EXPECT_EQ(t.Int(b2, 1), 3);
}

TEST(TableTest, TailNestKeepsDoublesAligned) {
  Table t("R", 1, 1);
  for (int64_t k : {5, 1, 3}) {
    int64_t row[1] = {k};
    double val[1] = {static_cast<double>(k) * 10};
    t.AppendRow(row, val);
  }
  t.TailNest(6);
  for (int64_t k : {1, 3, 5}) {
    auto [b, e] = t.Rows(k);
    ASSERT_EQ(e - b, 1u);
    EXPECT_DOUBLE_EQ(t.Double(b, 0), k * 10.0);
  }
}

TEST(TableTest, ContainsPair) {
  Table t("EDGE", 2, 0);
  for (auto [a, b] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 2}, {0, 5}, {1, 1}, {1, 9}}) {
    int64_t row[2] = {a, b};
    t.AppendRow(row);
  }
  t.TailNest(2);
  EXPECT_TRUE(t.ContainsPair(0, 2));
  EXPECT_TRUE(t.ContainsPair(1, 9));
  EXPECT_FALSE(t.ContainsPair(0, 3));
  EXPECT_FALSE(t.ContainsPair(1, 2));
  EXPECT_FALSE(t.ContainsPair(-1, 2));
  EXPECT_FALSE(t.ContainsPair(7, 2));
}

// --- Engine ----------------------------------------------------------------------

TEST(EngineTest, EvaluateRuleAggregatesSum) {
  DataliteOptions opts;
  Runtime rt(2, opts, 4);
  std::vector<double> head(4, 0.0);
  // Every key k emits 1.0 to key (k+1) % 4 and to key 0.
  EvaluateRule<double, SumAgg<double>>(
      &rt, &head, 16,
      [&](int64_t k, const std::function<void(int64_t, double)>& emit) {
        emit((k + 1) % 4, 1.0);
        emit(0, 1.0);
      });
  EXPECT_DOUBLE_EQ(head[0], 5.0);  // 4 broadcast + 1 ring.
  EXPECT_DOUBLE_EQ(head[1], 1.0);
  EXPECT_DOUBLE_EQ(head[2], 1.0);
  EXPECT_DOUBLE_EQ(head[3], 1.0);
  EXPECT_GT(rt.clock()->elapsed_seconds(), 0.0);
}

TEST(EngineTest, SemiNaiveFixpointComputesShortestHops) {
  // Ring of 6 vertices: BFS-like min rule must settle in one pass around.
  DataliteOptions opts;
  Runtime rt(2, opts, 6);
  std::vector<int64_t> dist(6, std::numeric_limits<int64_t>::max());
  dist[0] = 0;
  int rounds = SemiNaiveFixpoint<int64_t, MinAgg<int64_t>>(
      &rt, &dist, 16, {0},
      [&](int64_t k, int64_t v,
          const std::function<void(int64_t, int64_t)>& emit) {
        emit((k + 1) % 6, v + 1);
      });
  EXPECT_EQ(dist, (std::vector<int64_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(rounds, 6);  // 5 improving rounds + 1 empty-confirming round.
}

TEST(EngineTest, BatchingReducesMessageCount) {
  // Enough cross-shard tuples that the published runtime's ~1K-tuple socket
  // writes need many messages while the optimized runtime sends one per pair.
  constexpr int64_t kKeys = 100000;
  auto run = [](DataliteOptions opts) {
    Runtime rt(2, opts, kKeys);
    std::vector<double> head(kKeys, 0.0);
    EvaluateRule<double, SumAgg<double>>(
        &rt, &head, 16,
        [&](int64_t k, const std::function<void(int64_t, double)>& emit) {
          emit(kKeys - 1 - k, 1.0);  // Every tuple crosses the shard boundary.
        });
    return rt.Finish();
  };
  rt::RunMetrics batched = run(DataliteOptions::Optimized());
  rt::RunMetrics per_tuple = run(DataliteOptions::AsPublished());
  EXPECT_EQ(batched.bytes_sent, per_tuple.bytes_sent);
  EXPECT_LT(batched.messages_sent, per_tuple.messages_sent);
  EXPECT_EQ(batched.messages_sent, 2u);  // One per rank pair.
}

// --- Algorithms --------------------------------------------------------------------

TEST(DataliteePageRankTest, MatchesReference) {
  EdgeList el = SmallRmat();
  Graph g = Graph::FromEdges(el, GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 5;
  auto result = PageRank(Graph::FromEdges(el, GraphDirections::kOutOnly), opt,
                         Config());
  auto expected = native::ReferencePageRank(g, 5, opt.jump);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], expected[v], 1e-9) << v;
  }
}

class DataliteRanksTest : public ::testing::TestWithParam<int> {};

TEST_P(DataliteRanksTest, BfsMatchesReference) {
  Graph g = Graph::FromEdges(SmallRmatUndirected(9), GraphDirections::kOutOnly);
  auto result = Bfs(g, rt::BfsOptions{1}, Config(GetParam()));
  EXPECT_EQ(result.distance, native::ReferenceBfs(g, 1));
}

TEST_P(DataliteRanksTest, TriangleCountMatchesReference) {
  Graph g = Graph::FromEdges(SmallRmatOriented(9), GraphDirections::kOutOnly);
  auto result = TriangleCount(g, {}, Config(GetParam()));
  EXPECT_EQ(result.triangles, native::ReferenceTriangleCount(g));
}

INSTANTIATE_TEST_SUITE_P(Ranks, DataliteRanksTest, ::testing::Values(1, 2, 4));

TEST(DataliteCfTest, GdMatchesNativeGd) {
  BipartiteGraph g = testgraphs::SmallRatings(9).ToGraph();
  rt::CfOptions opt;
  opt.method = rt::CfMethod::kGd;
  opt.k = 4;
  opt.iterations = 3;
  auto dl = CollaborativeFiltering(g, opt, Config(2));
  auto nat = native::CollaborativeFiltering(g, opt, rt::EngineConfig{});
  for (size_t i = 0; i < nat.user_factors.size(); ++i) {
    ASSERT_NEAR(dl.user_factors[i], nat.user_factors[i], 1e-9) << i;
  }
}

TEST(DataliteNetworkTest, Table7TogglesChangeCommBehavior) {
  // The "Before" configuration (single socket, per-tuple messages) must spend
  // more modeled wire time than the optimized one. Comparing the wire
  // component (not total elapsed time, which includes measured compute and is
  // noisy under parallel test load) keeps this deterministic: bytes, message
  // counts, and the comm models are all fixed.
  Graph g = Graph::FromEdges(SmallRmat(11), GraphDirections::kOutOnly);
  rt::PageRankOptions opt;
  opt.iterations = 4;
  rt::EngineConfig before_cfg = Config(4);
  before_cfg.trace = true;
  before_cfg.comm = DataliteOptions::AsPublished().Comm();
  rt::EngineConfig after_cfg = Config(4);
  after_cfg.trace = true;
  auto before = PageRank(g, opt, before_cfg, DataliteOptions::AsPublished());
  auto after = PageRank(g, opt, after_cfg, DataliteOptions::Optimized());
  auto wire_total = [](const rt::RunMetrics& m) {
    double total = 0;
    for (const rt::StepRecord& s : m.steps) total += s.wire_seconds;
    return total;
  };
  EXPECT_GT(wire_total(before.metrics), wire_total(after.metrics));
  // Per-tuple messaging also means many more wire messages for the same bytes.
  EXPECT_GT(before.metrics.messages_sent, after.metrics.messages_sent);
  EXPECT_EQ(before.metrics.bytes_sent, after.metrics.bytes_sent);
  // Same answers either way.
  for (size_t v = 0; v < after.ranks.size(); ++v) {
    ASSERT_NEAR(before.ranks[v], after.ranks[v], 1e-12);
  }
}

}  // namespace
}  // namespace maze::datalog
