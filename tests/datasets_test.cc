#include "core/datasets.h"

#include <gtest/gtest.h>

#include "core/degree.h"
#include "core/graph.h"

namespace maze {
namespace {

TEST(DatasetsTest, RegistryListsAllPaperDatasets) {
  const auto& all = AllDatasets();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0].name, "facebook");
  EXPECT_EQ(all[4].name, "twitter");
  // Paper sizes preserved for the Table 3 report.
  EXPECT_EQ(all[4].paper_edges, 1468365182u);
}

// Every graph stand-in loads (at reduced scale), is non-trivial, and is skewed.
class GraphDatasetTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GraphDatasetTest, LoadsAndIsSkewed) {
  EdgeList el = LoadGraphDataset(GetParam(), /*scale_adjust=*/-4);
  EXPECT_GT(el.num_vertices, 0u);
  EXPECT_GT(el.edges.size(), el.num_vertices);  // Mean degree > 1.
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  DegreeStats stats = ComputeOutDegreeStats(g);
  EXPECT_GT(stats.top1pct_edge_share, 0.05) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, GraphDatasetTest,
                         ::testing::Values("facebook", "wikipedia",
                                           "livejournal", "twitter", "rmat"));

class RatingsDatasetTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RatingsDatasetTest, LoadsValidRatings) {
  RatingsDataset ds = LoadRatingsDataset(GetParam(), /*scale_adjust=*/-4);
  EXPECT_GT(ds.num_users, 0u);
  EXPECT_GT(ds.num_items, 0u);
  EXPECT_GT(ds.ratings.size(), ds.num_users);  // Several ratings per user.
}

INSTANTIATE_TEST_SUITE_P(AllRatings, RatingsDatasetTest,
                         ::testing::Values("netflix", "yahoomusic", "rmat_cf"));

TEST(DatasetsTest, ScaleAdjustShrinksGraph) {
  EdgeList big = LoadGraphDataset("facebook", -3);
  EdgeList small = LoadGraphDataset("facebook", -5);
  EXPECT_GT(big.num_vertices, small.num_vertices);
}

TEST(DatasetsTest, SingleNodeListMatchesFigure3) {
  auto names = SingleNodeGraphDatasets();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "livejournal");
  EXPECT_EQ(names[3], "rmat");
}

TEST(DatasetsTest, LoadIsDeterministic) {
  EdgeList a = LoadGraphDataset("wikipedia", -5);
  EdgeList b = LoadGraphDataset("wikipedia", -5);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(DatasetsTest, FindDatasetResolvesEveryRegistryName) {
  for (const DatasetInfo& info : AllDatasets()) {
    const DatasetInfo* found = FindDataset(info.name);
    ASSERT_NE(found, nullptr) << info.name;
    EXPECT_EQ(found->name, info.name);
  }
  EXPECT_EQ(FindDataset("ghost"), nullptr);
}

// The CLI contract: every name `datasets` lists resolves through the loader
// matching its kind, at reduced scale.
TEST(DatasetsTest, EveryListedDatasetLoadsThroughTryLoaders) {
  for (const DatasetInfo& info : AllDatasets()) {
    SCOPED_TRACE(info.name);
    if (info.is_ratings) {
      auto ds = TryLoadRatingsDataset(info.name, /*scale_adjust=*/-4);
      ASSERT_TRUE(ds.ok()) << ds.status().ToString();
      EXPECT_GT(ds.value().num_users, 0u);
      EXPECT_GT(ds.value().ratings.size(), 0u);
    } else {
      auto el = TryLoadGraphDataset(info.name, /*scale_adjust=*/-4);
      ASSERT_TRUE(el.ok()) << el.status().ToString();
      EXPECT_GT(el.value().num_vertices, 0u);
      EXPECT_GT(el.value().edges.size(), 0u);
    }
  }
}

TEST(DatasetsTest, TryLoadersRejectUnknownAndWrongKind) {
  EXPECT_EQ(TryLoadGraphDataset("ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(TryLoadRatingsDataset("ghost").status().code(),
            StatusCode::kNotFound);
  // Kind mismatches are invalid-argument, and the message says which kind the
  // name actually is.
  EXPECT_EQ(TryLoadGraphDataset("netflix").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TryLoadRatingsDataset("facebook").status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace maze
