#include "core/degree.h"

#include <gtest/gtest.h>

namespace maze {
namespace {

TEST(DegreeTest, StarGraph) {
  // Vertex 0 points at everyone: max degree n-1, extreme top-1% share.
  EdgeList el;
  el.num_vertices = 101;
  for (VertexId v = 1; v <= 100; ++v) el.edges.push_back({0, v});
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  DegreeStats stats = ComputeOutDegreeStats(g);
  EXPECT_EQ(stats.max_degree, 100u);
  EXPECT_NEAR(stats.mean_degree, 100.0 / 101.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.top1pct_edge_share, 1.0);
}

TEST(DegreeTest, RegularGraphHasNoSkew) {
  // A ring: every vertex has out-degree 1.
  EdgeList el;
  el.num_vertices = 1000;
  for (VertexId v = 0; v < 1000; ++v) el.edges.push_back({v, (v + 1) % 1000});
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  DegreeStats stats = ComputeOutDegreeStats(g);
  EXPECT_EQ(stats.max_degree, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 1.0);
  EXPECT_NEAR(stats.top1pct_edge_share, 0.01, 1e-9);
}

TEST(DegreeTest, HistogramSumsToVertexCount) {
  EdgeList el;
  el.num_vertices = 50;
  for (VertexId v = 0; v < 25; ++v) el.edges.push_back({v, v + 25});
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  DegreeStats stats = ComputeOutDegreeStats(g);
  uint64_t total = 0;
  for (uint64_t c : stats.histogram) total += c;
  EXPECT_EQ(total, 50u);
  EXPECT_EQ(stats.histogram[0], 25u);
  EXPECT_EQ(stats.histogram[1], 25u);
}

TEST(DegreeTest, EmptyGraph) {
  EdgeList el;
  el.num_vertices = 0;
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  DegreeStats stats = ComputeOutDegreeStats(g);
  EXPECT_EQ(stats.max_degree, 0u);
  EXPECT_EQ(stats.mean_degree, 0.0);
}

}  // namespace
}  // namespace maze
