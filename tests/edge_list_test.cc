#include "core/edge_list.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace maze {
namespace {

TEST(EdgeListTest, DeduplicateRemovesDuplicatesAndSelfLoops) {
  EdgeList el;
  el.num_vertices = 5;
  el.edges = {{0, 1}, {1, 2}, {0, 1}, {3, 3}, {2, 1}};
  el.Deduplicate();
  EXPECT_EQ(el.edges, (std::vector<Edge>{{0, 1}, {1, 2}, {2, 1}}));
}

TEST(EdgeListTest, SymmetrizeAddsReverseEdges) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 1}, {2, 3}};
  el.Symmetrize();
  EXPECT_EQ(el.edges, (std::vector<Edge>{{0, 1}, {1, 0}, {2, 3}, {3, 2}}));
}

TEST(EdgeListTest, SymmetrizeIsIdempotentOnSymmetricInput) {
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {{0, 1}, {1, 0}};
  el.Symmetrize();
  EXPECT_EQ(el.edges.size(), 2u);
}

TEST(EdgeListTest, OrientBySmallerIdProducesAcyclicOrientation) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {{3, 1}, {1, 3}, {0, 2}, {2, 0}};
  el.OrientBySmallerId();
  EXPECT_EQ(el.edges, (std::vector<Edge>{{0, 2}, {1, 3}}));
  for (const Edge& e : el.edges) EXPECT_LT(e.src, e.dst);
}

TEST(EdgeListTest, EmptyListOperationsAreSafe) {
  EdgeList el;
  el.Deduplicate();
  el.Symmetrize();
  el.OrientBySmallerId();
  EXPECT_EQ(el.size(), 0u);
}

}  // namespace
}  // namespace maze
