// Engine-internal behaviors not covered by the algorithm-level suites: the
// vertexlab mirroring wire discount, bspgraph boxing/buffer accounting, the
// modeled-node-width normalization, and partition/grid edge cases.
#include <gtest/gtest.h>

#include "bsp/algorithms.h"
#include "native/pagerank.h"
#include "core/graph.h"
#include "rt/partition.h"
#include "rt/sim_clock.h"
#include "tests/test_graphs.h"
#include "vertex/algorithms.h"

namespace maze {
namespace {

// --- Modeled node width -----------------------------------------------------

class NodeWidthGuard {
 public:
  NodeWidthGuard(int threads) { rt::SetModeledNodeThreads(threads); }
  ~NodeWidthGuard() { rt::SetModeledNodeThreads(0); }
};

TEST(NodeWidthTest, DefaultIsHostWidth) {
  rt::SetModeledNodeThreads(0);
  EXPECT_EQ(rt::ModeledNodeThreads(),
            static_cast<int>(ThreadPool::Default().num_threads()));
  EXPECT_DOUBLE_EQ(rt::internal::HostToNodeScale(), 1.0);
}

TEST(NodeWidthTest, WiderModeledNodeShrinksChargedCompute) {
  NodeWidthGuard guard(4 * static_cast<int>(ThreadPool::Default().num_threads()));
  rt::SimClock clock(1, rt::CommModel::Mpi());
  clock.RecordCompute(0, 1.0);
  clock.EndStep();
  EXPECT_NEAR(clock.elapsed_seconds(), 0.25, 1e-12);
}

TEST(NodeWidthTest, EngineComputeScaleModelsWorkerCaps) {
  NodeWidthGuard guard(48);
  // 4 workers of a 48-thread node: 12x penalty relative to a full-node engine.
  EXPECT_DOUBLE_EQ(rt::EngineComputeScale(4), 12.0);
  EXPECT_DOUBLE_EQ(rt::EngineComputeScale(48), 1.0);
  EXPECT_DOUBLE_EQ(rt::EngineComputeScale(1000), 1.0);  // Clamped to the node.
}

TEST(NodeWidthTest, ClockCapturesWidthAtConstruction) {
  NodeWidthGuard guard(2 * static_cast<int>(ThreadPool::Default().num_threads()));
  rt::SimClock clock(1, rt::CommModel::Mpi());
  rt::SetModeledNodeThreads(0);  // Change after construction: no effect.
  clock.RecordCompute(0, 1.0);
  clock.EndStep();
  EXPECT_NEAR(clock.elapsed_seconds(), 0.5, 1e-12);
}

// --- vertexlab mirroring ------------------------------------------------------

TEST(VertexlabMirroringTest, BroadcastTrafficIsPerRankNotPerEdge) {
  // Triangle counting broadcasts neighbor lists (non-combinable): with
  // mirroring, a vertex's list crosses to a rank once even when it has many
  // neighbors there. Build a hub with many neighbors in the other rank's half.
  EdgeList el;
  el.num_vertices = 64;
  for (VertexId v = 33; v < 64; ++v) el.edges.push_back({1, v});
  // Close one triangle so the run is non-trivial.
  el.edges.push_back({33, 34});
  rt::EngineConfig config;
  config.num_ranks = 2;
  config.comm = vertex::DefaultComm();
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto result = vertex::TriangleCount(g, {}, config);
  EXPECT_EQ(result.triangles, 1u);
  // Hub vertex 1's list: 31 entries * 4B + header, crossing once (~135B), plus
  // vertex 33's 2-entry list. Per-edge shipping would exceed 31 * 128B ~ 4KB.
  EXPECT_LT(result.metrics.bytes_sent, 1000u);
  EXPECT_GT(result.metrics.bytes_sent, 100u);
}

// --- bspgraph accounting ---------------------------------------------------------

TEST(BspAccountingTest, BufferPeakScalesWithMessageVolume) {
  Graph small = Graph::FromEdges(testgraphs::SmallRmatOriented(8, 4),
                                 GraphDirections::kOutOnly);
  Graph large = Graph::FromEdges(testgraphs::SmallRmatOriented(10, 8),
                                 GraphDirections::kOutOnly);
  rt::EngineConfig config;
  config.comm = bsp::DefaultComm();
  auto a = bsp::TriangleCount(small, {}, config);
  auto b = bsp::TriangleCount(large, {}, config);
  EXPECT_GT(b.metrics.memory_peak_bytes, a.metrics.memory_peak_bytes);
}

TEST(BspAccountingTest, MoreWorkersReduceChargedTime) {
  NodeWidthGuard guard(48);
  Graph g = Graph::FromEdges(testgraphs::SmallRmat(9), GraphDirections::kOutOnly);
  rt::PageRankOptions opt;
  opt.iterations = 3;
  rt::EngineConfig config;
  config.comm = bsp::DefaultComm();
  bsp::BspOptions four;
  bsp::BspOptions full;
  full.workers_per_node = 48;
  auto capped = bsp::PageRank(g, opt, config, four);
  auto uncapped = bsp::PageRank(g, opt, config, full);
  // 12x worker penalty dominates single-node runs.
  EXPECT_GT(capped.metrics.elapsed_seconds,
            uncapped.metrics.elapsed_seconds * 4);
}

// --- Partition edge cases ----------------------------------------------------------

TEST(PartitionEdgeCaseTest, AllEdgesOnOneVertex) {
  // A star: edge balancing must isolate the hub without crashing.
  EdgeList el;
  el.num_vertices = 100;
  for (VertexId v = 1; v < 100; ++v) el.edges.push_back({0, v});
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  rt::Partition1D part = rt::Partition1D::EdgeBalanced(g, 4);
  EXPECT_EQ(part.num_parts(), 4);
  VertexId total = 0;
  for (int p = 0; p < 4; ++p) total += part.Size(p);
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(part.OwnerOf(0), 0);
}

TEST(PartitionEdgeCaseTest, EmptyGraphPartitions) {
  rt::Partition1D part = rt::Partition1D::VertexBalanced(0, 4);
  EXPECT_EQ(part.num_parts(), 4);
  for (int p = 0; p < 4; ++p) EXPECT_EQ(part.Size(p), 0u);
}

// --- Step tracing --------------------------------------------------------------

TEST(StepTraceTest, DisabledByDefault) {
  Graph g = Graph::FromEdges(testgraphs::SmallRmat(8), GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 3;
  auto r = native::PageRank(g, opt, rt::EngineConfig{});
  EXPECT_TRUE(r.metrics.steps.empty());
}

TEST(StepTraceTest, RecordsOneRecordPerStep) {
  Graph g = Graph::FromEdges(testgraphs::SmallRmat(8), GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 3;
  rt::EngineConfig config;
  config.num_ranks = 2;
  config.trace = true;
  auto r = native::PageRank(g, opt, config);
  // Setup exchange step + one step per iteration.
  ASSERT_EQ(r.metrics.steps.size(), 4u);
  double wire_total = 0;
  uint64_t bytes_total = 0;
  for (const rt::StepRecord& s : r.metrics.steps) {
    wire_total += s.wire_seconds;
    bytes_total += s.bytes_sent;
  }
  EXPECT_GT(wire_total, 0.0);
  EXPECT_EQ(bytes_total, r.metrics.bytes_sent);
}

TEST(StepTraceTest, CsvHasHeaderAndRows) {
  std::vector<rt::StepRecord> steps = {
      {0, 0.5, 0.25, 100, 2, true},
      {1, 0.75, 0.0, 0, 0, false},
  };
  std::string csv = rt::StepTraceCsv(steps);
  EXPECT_NE(csv.find("step,compute_seconds"), std::string::npos);
  EXPECT_NE(csv.find("0,0.5,0.25,100,2,1"), std::string::npos);
  EXPECT_NE(csv.find("1,0.75,0,0,0,0"), std::string::npos);
}

}  // namespace
}  // namespace maze
