#include "rt/exchange.h"

#include <gtest/gtest.h>

namespace maze::rt {
namespace {

TEST(ExchangeTest, DeliversToMatchingInbox) {
  Exchange<int> ex(3);
  ex.OutBox(0, 2) = {1, 2, 3};
  ex.OutBox(1, 2) = {4};
  SimClock clock(3, CommModel::Mpi());
  ex.Deliver(&clock);
  EXPECT_EQ(std::vector<int>(ex.InBox(2, 0).begin(), ex.InBox(2, 0).end()),
            (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(std::vector<int>(ex.InBox(2, 1).begin(), ex.InBox(2, 1).end()),
            std::vector<int>{4});
  EXPECT_TRUE(ex.InBox(0, 1).empty());
  EXPECT_EQ(ex.InboundCount(2), 4u);
}

TEST(ExchangeTest, ChargesClockForCrossRankTraffic) {
  Exchange<uint64_t> ex(2);
  ex.OutBox(0, 1) = {1, 2, 3, 4};  // 32 bytes.
  ex.OutBox(1, 1) = {9, 9};        // Same-rank: free.
  SimClock clock(2, CommModel::Mpi());
  ex.Deliver(&clock);
  RunMetrics metrics = clock.Finish();
  EXPECT_EQ(metrics.bytes_sent, 32u);
  EXPECT_EQ(metrics.messages_sent, 1u);
}

TEST(ExchangeTest, CustomWireBytesPerRecord) {
  Exchange<uint64_t> ex(2);
  ex.OutBox(0, 1) = {1, 2, 3, 4};
  SimClock clock(2, CommModel::Mpi());
  ex.Deliver(&clock, /*wire_bytes_per_record=*/1.5);
  EXPECT_EQ(clock.Finish().bytes_sent, 6u);
}

TEST(ExchangeTest, OutboxesClearAfterDeliver) {
  Exchange<int> ex(2);
  ex.OutBox(0, 1) = {1};
  ex.Deliver(nullptr);
  EXPECT_TRUE(ex.OutBox(0, 1).empty());
  // Second deliver replaces inbox contents.
  ex.Deliver(nullptr);
  EXPECT_TRUE(ex.InBox(1, 0).empty());
}

TEST(ExchangeTest, MaxOutboxBytesPerRank) {
  Exchange<uint32_t> ex(2);
  ex.OutBox(0, 1) = {1, 2, 3};          // 12 bytes buffered at rank 0.
  ex.OutBox(1, 0) = {1};                // 4 bytes at rank 1.
  EXPECT_EQ(ex.MaxOutboxBytesPerRank(), 12u);
}

TEST(ExchangeTest, MaxOutboxBytesPerRankHonorsWireBytesOverride) {
  Exchange<uint32_t> ex(2);
  ex.OutBox(0, 1) = {1, 2, 3};  // 3 records.
  ex.OutBox(1, 0) = {1};
  // The same per-record wire size Deliver() takes: boxed 28-byte messages make
  // rank 0's buffered outbox 84 bytes, and fractional sizes truncate the same
  // way Deliver charges them (3 * 1.5 = 4.5 -> 4).
  EXPECT_EQ(ex.MaxOutboxBytesPerRank(28.0), 84u);
  EXPECT_EQ(ex.MaxOutboxBytesPerRank(1.5), 4u);
}

TEST(ExchangeTest, ClearInboxes) {
  Exchange<int> ex(2);
  ex.OutBox(0, 1) = {1, 2};
  ex.Deliver(nullptr);
  ex.ClearInboxes();
  EXPECT_EQ(ex.InboundCount(1), 0u);
}

}  // namespace
}  // namespace maze::rt
