// Failure-path coverage: invariant violations must fail fast and loudly
// (MAZE_CHECK aborts), and fallible operations must return Status instead of
// corrupting state.
#include <gtest/gtest.h>

#include "bench_support/runner.h"
#include "core/graph.h"
#include "core/io.h"
#include "datalog/table.h"
#include "native/bfs.h"
#include "native/pagerank.h"
#include "rt/fault.h"
#include "rt/partition.h"
#include "rt/sim_clock.h"
#include "task/algorithms.h"
#include "tests/test_graphs.h"
#include "util/check.h"

namespace maze {
namespace {

using FailureDeathTest = ::testing::Test;

TEST(FailureDeathTest, GraphBuildRejectsOutOfRangeVertex) {
  EdgeList el;
  el.num_vertices = 2;
  el.edges = {{0, 5}};  // dst beyond num_vertices.
  EXPECT_DEATH(Graph::FromEdges(el), "MAZE_CHECK failed");
}

TEST(FailureDeathTest, PageRankRequiresInCsr) {
  Graph g = Graph::FromEdges(testgraphs::Figure2(), GraphDirections::kOutOnly);
  EXPECT_DEATH(native::PageRank(g, {}, rt::EngineConfig{}), "MAZE_CHECK failed");
}

TEST(FailureDeathTest, BfsRejectsOutOfRangeSource) {
  Graph g = Graph::FromEdges(testgraphs::Figure2());
  rt::BfsOptions opt;
  opt.source = 1000;
  EXPECT_DEATH(native::Bfs(g, opt, rt::EngineConfig{}), "MAZE_CHECK failed");
}

TEST(FailureDeathTest, TaskflowRejectsMultiNode) {
  Graph g = Graph::FromEdges(testgraphs::Figure2());
  rt::EngineConfig config;
  config.num_ranks = 4;  // Galois is single node (Table 2).
  EXPECT_DEATH(task::PageRank(g, {}, config), "MAZE_CHECK failed");
}

TEST(FailureDeathTest, Grid2DRejectsNonSquareRankCount) {
  EXPECT_DEATH(rt::Grid2D::ForRanks(3), "MAZE_CHECK failed");
}

TEST(FailureDeathTest, SimClockRejectsUnknownRank) {
  rt::SimClock clock(2, rt::CommModel::Mpi());
  EXPECT_DEATH(clock.RecordCompute(5, 0.1), "MAZE_CHECK failed");
}

TEST(FailureDeathTest, TableRejectsArityMismatch) {
  datalog::Table t("T", 2, 0);
  int64_t row[1] = {1};
  EXPECT_DEATH(t.AppendRow(row), "MAZE_CHECK failed");
}

TEST(FailureDeathTest, TableRejectsKeysOutsideDeclaredSpace) {
  datalog::Table t("T", 1, 0);
  int64_t row[1] = {99};
  t.AppendRow(row);
  EXPECT_DEATH(t.TailNest(/*key_space=*/10), "MAZE_CHECK failed");
}

TEST(FailureDeathTest, RankCrashWithoutCheckpointingIsUnrecoverable) {
  // A fault plan may crash a rank, but only the checkpointing BSP engine can
  // recover; a crash with no checkpoint interval is a hard configuration error.
  EdgeList el = testgraphs::Figure2();
  rt::PageRankOptions opt;
  opt.iterations = 4;
  bench::RunConfig config;
  config.num_ranks = 2;
  config.faults = rt::fault::ParseFaultSpec("crash=0@1").value();
  EXPECT_DEATH(
      bench::RunPageRank(bench::EngineKind::kBspgraph, el, opt, config),
      "MAZE_CHECK failed");
}

TEST(FailureDeathTest, TransportRetryBudgetExhaustionIsFatal) {
  // retries=0 leaves a dropped frame with no retransmission path: the modeled
  // ack protocol cannot deliver it, so the run must abort rather than let the
  // receiver silently miss messages.
  rt::fault::FaultSpec spec =
      rt::fault::ParseFaultSpec("seed=1,drop=0.9,retries=0").value();
  EXPECT_DEATH(
      {
        rt::SimClock clock(2, rt::CommModel::Mpi(), false, spec);
        for (int i = 0; i < 1000; ++i) clock.RecordSend(0, 1, 64, 1);
      },
      "MAZE_CHECK failed");
}

TEST(FailureStatusTest, MalformedFaultPlansAreStatusesNotCrashes) {
  auto out_of_range = rt::fault::ParseFaultSpec("drop=2.0");
  EXPECT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);

  auto unknown_key = rt::fault::ParseFaultSpec("chaos=1");
  EXPECT_FALSE(unknown_key.ok());
  EXPECT_EQ(unknown_key.status().code(), StatusCode::kInvalidArgument);

  auto bad_crash = rt::fault::ParseFaultSpec("crash=3");
  EXPECT_FALSE(bad_crash.ok());
  EXPECT_EQ(bad_crash.status().code(), StatusCode::kInvalidArgument);
}

TEST(FailureStatusTest, IoFailuresAreStatusesNotCrashes) {
  // Write to an unwritable path.
  EdgeList el = testgraphs::Figure2();
  Status s = WriteEdgeListText(el, "/nonexistent-dir/graph.txt");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);

  Status b = WriteEdgeListBinary(el, "/nonexistent-dir/graph.bin");
  EXPECT_FALSE(b.ok());
}

TEST(FailureStatusTest, TruncatedBinaryFileIsDetected) {
  std::string path = testing::TempDir() + "/truncated.bin";
  EdgeList el = testgraphs::Figure2();
  ASSERT_TRUE(WriteEdgeListBinary(el, path).ok());
  // Truncate mid-edge-array.
  FILE* f = fopen(path.c_str(), "r+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(ftruncate(fileno(f), 24 + 3), 0);
  fclose(f);
  auto result = ReadEdgeListBinary(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace maze
