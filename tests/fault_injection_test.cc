// Differential fault-injection harness: a seeded fault plan (message drops,
// duplicated frames, stragglers, rank crashes) must never change an engine's
// *answers* — recovery (ack/retry + dedup, checkpoint/restore) hides every
// injected fault from the algorithm, and only the modeled clock and the wire
// totals pay. Asserted end to end for every engine on PageRank and BFS, plus
// schedule invariance: the same plan injects the same faults and charges the
// same recovery cost under the serial and rank-parallel schedules.
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_support/runner.h"
#include "rt/fault.h"
#include "rt/metrics.h"
#include "rt/rank_exec.h"
#include "tests/test_graphs.h"

namespace maze::bench {
namespace {

// Force a real pool before first use so the parallel schedule is exercised
// even on a single-core host (mirrors rank_parallel_test).
const bool kForcePoolSize = [] {
  setenv("MAZE_THREADS", "4", /*overwrite=*/0);
  return true;
}();

int RanksFor(EngineKind engine) {
  return engine == EngineKind::kTaskflow ? 1 : 16;
}

rt::fault::FaultSpec Plan(const std::string& text) {
  auto spec = rt::fault::ParseFaultSpec(text);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return spec.value();
}

struct PlanCase {
  const char* name;
  const char* spec;
  bool expects_transport_faults;  // On multi-rank engines.
  bool expects_crash_recovery;    // On the bspgraph engine.
};

// The five fault families of the plan grammar. Crash plans carry a checkpoint
// interval (crash recovery without one is a death-test case, not a plan).
const PlanCase kPlans[] = {
    {"drop", "seed=11,drop=0.05,retries=64,timeout=1e-4", true, false},
    {"dup", "seed=12,dup=0.08", true, false},
    {"dropdup", "seed=15,drop=0.03,dup=0.05,retries=64,timeout=1e-4", true,
     false},
    {"straggler", "seed=13,straggle=1x3.0,straggle=0x1.5", false, false},
    {"crash", "seed=14,crash=1@2,ckpt=2,ckpt_lat=0.01", false, true},
};

class FaultInjectionTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void TearDown() override { rt::SetSerialRanks(-1); }
};

std::string EngineCaseName(const ::testing::TestParamInfo<EngineKind>& info) {
  return EngineName(info.param);
}

TEST_P(FaultInjectionTest, PageRankSurvivesEveryFaultFamily) {
  const EngineKind engine = GetParam();
  EdgeList el = testgraphs::SmallRmat(9);
  rt::PageRankOptions opt;
  opt.iterations = 4;
  RunConfig config;
  config.num_ranks = RanksFor(engine);

  rt::SetSerialRanks(1);  // Deterministic values: compare runs bit-for-bit.
  auto baseline = RunPageRank(engine, el, opt, config);

  for (const PlanCase& plan : kPlans) {
    SCOPED_TRACE(plan.name);
    RunConfig faulted = config;
    faulted.faults = Plan(plan.spec);
    auto run = RunPageRank(engine, el, opt, faulted);

    ASSERT_EQ(run.ranks.size(), baseline.ranks.size());
    for (size_t v = 0; v < baseline.ranks.size(); ++v) {
      ASSERT_EQ(run.ranks[v], baseline.ranks[v])
          << EngineName(engine) << " vertex " << v;
    }
    EXPECT_EQ(run.iterations, baseline.iterations);

    if (plan.expects_transport_faults && config.num_ranks > 1) {
      EXPECT_GT(run.metrics.faults_injected, 0u);
      // Lossy links move extra frames; the totals must show them.
      EXPECT_GT(run.metrics.bytes_sent, baseline.metrics.bytes_sent);
      EXPECT_GT(run.metrics.messages_sent, baseline.metrics.messages_sent);
    }
    if (plan.expects_crash_recovery && engine == EngineKind::kBspgraph) {
      EXPECT_EQ(run.metrics.crash_restarts, 1u);
      EXPECT_GT(run.metrics.checkpoints_written, 0u);
      EXPECT_GT(run.metrics.recovery_seconds, 0.0);
    }
    if (!plan.expects_transport_faults) {
      // Stragglers and crashes never touch the transport.
      EXPECT_EQ(run.metrics.transport_retries, 0u);
      EXPECT_EQ(run.metrics.duplicated_frames, 0u);
    }
  }
}

TEST_P(FaultInjectionTest, BfsSurvivesEveryFaultFamily) {
  const EngineKind engine = GetParam();
  EdgeList el = testgraphs::SmallRmatUndirected(9);
  rt::BfsOptions opt{3};
  RunConfig config;
  config.num_ranks = RanksFor(engine);

  rt::SetSerialRanks(1);
  auto baseline = RunBfs(engine, el, opt, config);

  for (const PlanCase& plan : kPlans) {
    SCOPED_TRACE(plan.name);
    RunConfig faulted = config;
    faulted.faults = Plan(plan.spec);
    auto run = RunBfs(engine, el, opt, faulted);

    EXPECT_EQ(run.distance, baseline.distance) << EngineName(engine);
    EXPECT_EQ(run.levels, baseline.levels);
    if (plan.expects_transport_faults && config.num_ranks > 1) {
      EXPECT_GT(run.metrics.faults_injected, 0u);
    }
    if (plan.expects_crash_recovery && engine == EngineKind::kBspgraph) {
      EXPECT_EQ(run.metrics.crash_restarts, 1u);
      EXPECT_GT(run.metrics.checkpoints_written, 0u);
    }
  }
}

// The injected faults themselves must be schedule-invariant: per-(src, dst)
// frame sequences hash the same way whether ranks run one at a time or
// concurrently, so both schedules see identical fault counts, wire totals,
// and modeled recovery cost.
TEST_P(FaultInjectionTest, FaultAccountingIsScheduleInvariant) {
  const EngineKind engine = GetParam();
  EdgeList el = testgraphs::SmallRmat(9);
  rt::PageRankOptions opt;
  opt.iterations = 4;

  for (const PlanCase& plan : kPlans) {
    SCOPED_TRACE(plan.name);
    RunConfig config;
    config.num_ranks = RanksFor(engine);
    config.faults = Plan(plan.spec);

    rt::SetSerialRanks(1);
    auto serial = RunPageRank(engine, el, opt, config);
    rt::SetSerialRanks(0);
    auto parallel = RunPageRank(engine, el, opt, config);

    ASSERT_EQ(parallel.ranks.size(), serial.ranks.size());
    for (size_t v = 0; v < serial.ranks.size(); ++v) {
      ASSERT_NEAR(parallel.ranks[v], serial.ranks[v], 1e-9)
          << EngineName(engine) << " vertex " << v;
    }
    EXPECT_EQ(parallel.iterations, serial.iterations);
    EXPECT_EQ(parallel.metrics.bytes_sent, serial.metrics.bytes_sent);
    EXPECT_EQ(parallel.metrics.messages_sent, serial.metrics.messages_sent);
    EXPECT_EQ(parallel.metrics.faults_injected, serial.metrics.faults_injected);
    EXPECT_EQ(parallel.metrics.transport_retries,
              serial.metrics.transport_retries);
    EXPECT_EQ(parallel.metrics.duplicated_frames,
              serial.metrics.duplicated_frames);
    EXPECT_EQ(parallel.metrics.checkpoints_written,
              serial.metrics.checkpoints_written);
    EXPECT_EQ(parallel.metrics.crash_restarts, serial.metrics.crash_restarts);
    EXPECT_DOUBLE_EQ(parallel.metrics.recovery_seconds,
                     serial.metrics.recovery_seconds);
  }
}

// Property sweep: randomized (but seeded) plans mixing all fault families must
// keep every engine converging to the fault-free answer, with CPU and
// bandwidth utilization still landing in [0, 1] bucket by bucket.
TEST_P(FaultInjectionTest, RandomPlansPreserveConvergenceAndUtilization) {
  const EngineKind engine = GetParam();
  EdgeList el = testgraphs::SmallRmat(9);
  rt::PageRankOptions opt;
  opt.iterations = 4;
  RunConfig config;
  config.num_ranks = RanksFor(engine);
  config.trace = true;

  rt::SetSerialRanks(1);
  auto baseline = RunPageRank(engine, el, opt, config);

  for (int i = 0; i < 6; ++i) {
    // Deterministic plan synthesis standing in for a fuzzer's random draws:
    // each index mixes different rates, stragglers, and (for the BSP engine)
    // a crash into one plan.
    std::ostringstream spec;
    spec << "seed=" << (1000 + 37 * i);
    if (i % 3 != 0) spec << ",drop=0.0" << (i % 3) << ",retries=64,timeout=1e-4";
    if (i % 2 == 1) spec << ",dup=0.0" << (1 + i % 5);
    spec << ",straggle=0x" << (1.0 + 0.5 * (i % 4));
    if (engine == EngineKind::kBspgraph) {
      spec << ",ckpt=" << (1 + i % 3);
      if (i % 2 == 0) spec << ",crash=1@" << (1 + i % 3) << ",ckpt_lat=0.01";
    }
    SCOPED_TRACE(spec.str());

    RunConfig faulted = config;
    faulted.faults = Plan(spec.str());
    auto run = RunPageRank(engine, el, opt, faulted);

    ASSERT_EQ(run.ranks.size(), baseline.ranks.size());
    for (size_t v = 0; v < baseline.ranks.size(); ++v) {
      ASSERT_EQ(run.ranks[v], baseline.ranks[v]) << "vertex " << v;
    }
    EXPECT_EQ(run.iterations, baseline.iterations);

    EXPECT_GE(run.metrics.cpu_utilization, 0.0);
    EXPECT_LE(run.metrics.cpu_utilization, 1.0);
    EXPECT_GE(run.metrics.recovery_seconds, 0.0);
    auto buckets = rt::UtilizationTimeline(run.metrics);
    ASSERT_FALSE(buckets.empty());
    for (const auto& b : buckets) {
      EXPECT_GE(b.cpu_busy, 0.0) << "step " << b.step << " rank " << b.rank;
      EXPECT_LE(b.cpu_busy, 1.0) << "step " << b.step << " rank " << b.rank;
      EXPECT_GE(b.bw_utilization, 0.0)
          << "step " << b.step << " rank " << b.rank;
      EXPECT_LE(b.bw_utilization, 1.0)
          << "step " << b.step << " rank " << b.rank;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, FaultInjectionTest,
                         ::testing::ValuesIn(AllEngines()), EngineCaseName);

}  // namespace
}  // namespace maze::bench
