// rt::fault unit coverage: the plan grammar, the pure per-frame transport
// decision (determinism + seed sensitivity + rate calibration), and the
// SimClock/Exchange integration — stragglers stretch compute, drops charge
// retransmissions plus ack-timeout stall, duplicates are deduped so inbox
// contents never change.
#include "rt/fault.h"

#include <vector>

#include <gtest/gtest.h>

#include "rt/exchange.h"
#include "rt/sim_clock.h"

namespace maze::rt {
namespace {

fault::FaultSpec MustParse(const std::string& text) {
  auto spec = fault::ParseFaultSpec(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

TEST(FaultSpecParseTest, EmptySpecIsDisabled) {
  fault::FaultSpec spec = MustParse("");
  EXPECT_FALSE(spec.enabled);
  EXPECT_FALSE(spec.TransportFaultsEnabled());
  EXPECT_DOUBLE_EQ(spec.StragglerMultiplier(0), 1.0);
}

TEST(FaultSpecParseTest, FullGrammarRoundTrips) {
  fault::FaultSpec spec = MustParse(
      "seed=42,drop=0.01,dup=0.005,crash=1@3,crash=2@5,straggle=0x2.5,"
      "ckpt=2,retries=8,timeout=0.002,ckpt_bw=1e8,ckpt_lat=0.01");
  EXPECT_TRUE(spec.enabled);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_DOUBLE_EQ(spec.drop_rate, 0.01);
  EXPECT_DOUBLE_EQ(spec.dup_rate, 0.005);
  ASSERT_EQ(spec.crashes.size(), 2u);
  EXPECT_EQ(spec.crashes[0].rank, 1);
  EXPECT_EQ(spec.crashes[0].step, 3);
  EXPECT_EQ(spec.crashes[1].rank, 2);
  EXPECT_EQ(spec.crashes[1].step, 5);
  ASSERT_EQ(spec.stragglers.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.StragglerMultiplier(0), 2.5);
  EXPECT_DOUBLE_EQ(spec.StragglerMultiplier(1), 1.0);
  EXPECT_EQ(spec.checkpoint_interval, 2);
  EXPECT_EQ(spec.max_retries, 8);
  EXPECT_DOUBLE_EQ(spec.retry_timeout_seconds, 0.002);
  EXPECT_DOUBLE_EQ(spec.checkpoint_bandwidth, 1e8);
  EXPECT_DOUBLE_EQ(spec.checkpoint_latency_seconds, 0.01);
  EXPECT_TRUE(spec.TransportFaultsEnabled());
}

TEST(FaultSpecParseTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "drop=2.0",       // Rate outside [0, 1).
      "dup=1.0",        // Dup rate must stay below 1.
      "bogus=1",        // Unknown key.
      "crash=5",        // Missing @STEP.
      "crash=-1@2",     // Negative rank.
      "straggle=1",     // Missing xMULT.
      "straggle=1x0.5", // Sub-unit multiplier would speed the rank up.
      "ckpt=-3",        // Negative interval.
      "drop",           // Not key=value.
      "seed=abc",       // Non-numeric.
      "ckpt_bw=0",      // Zero bandwidth divides by zero.
  };
  for (const char* text : bad) {
    auto spec = fault::ParseFaultSpec(text);
    EXPECT_FALSE(spec.ok()) << text;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(DecideTransportTest, PureFunctionOfSeedPairAndSequence) {
  fault::FaultSpec spec = MustParse("seed=7,drop=0.3,dup=0.2,retries=1000");
  for (uint64_t seq = 0; seq < 200; ++seq) {
    fault::TransportOutcome a = fault::DecideTransport(spec, 0, 1, seq);
    fault::TransportOutcome b = fault::DecideTransport(spec, 0, 1, seq);
    EXPECT_EQ(a.retries, b.retries) << seq;
    EXPECT_EQ(a.duplicated, b.duplicated) << seq;
  }
}

TEST(DecideTransportTest, SeedAndPairChangeTheFaultPattern) {
  fault::FaultSpec a = MustParse("seed=1,drop=0.3,retries=1000");
  fault::FaultSpec b = MustParse("seed=2,drop=0.3,retries=1000");
  int diff_seed = 0;
  int diff_pair = 0;
  for (uint64_t seq = 0; seq < 500; ++seq) {
    diff_seed += fault::DecideTransport(a, 0, 1, seq).retries !=
                 fault::DecideTransport(b, 0, 1, seq).retries;
    diff_pair += fault::DecideTransport(a, 0, 1, seq).retries !=
                 fault::DecideTransport(a, 1, 0, seq).retries;
  }
  EXPECT_GT(diff_seed, 0);
  EXPECT_GT(diff_pair, 0);
}

TEST(DecideTransportTest, ZeroRatesNeverFault) {
  fault::FaultSpec spec = MustParse("seed=3,straggle=0x2.0");
  for (uint64_t seq = 0; seq < 100; ++seq) {
    fault::TransportOutcome o = fault::DecideTransport(spec, 0, 1, seq);
    EXPECT_EQ(o.retries, 0);
    EXPECT_FALSE(o.duplicated);
  }
}

TEST(DecideTransportTest, RetryFrequencyTracksTheDropRate) {
  // With drop rate p, a frame needs p/(1-p) retransmissions in expectation:
  // 0.25 per frame at p = 0.2. Check the empirical mean lands near it.
  fault::FaultSpec spec = MustParse("seed=9,drop=0.2,retries=1000");
  const uint64_t frames = 20000;
  uint64_t retries = 0;
  uint64_t dups = 0;
  for (uint64_t seq = 0; seq < frames; ++seq) {
    fault::TransportOutcome o = fault::DecideTransport(spec, 2, 5, seq);
    retries += static_cast<uint64_t>(o.retries);
    dups += o.duplicated;
  }
  double mean = static_cast<double>(retries) / frames;
  EXPECT_NEAR(mean, 0.25, 0.02);
  EXPECT_EQ(dups, 0u);
}

TEST(TransportSequencerTest, PerPairMonotoneAndIndependent) {
  fault::TransportSequencer seqr(3);
  EXPECT_EQ(seqr.Next(0, 1), 0u);
  EXPECT_EQ(seqr.Next(0, 1), 1u);
  EXPECT_EQ(seqr.Next(1, 0), 0u);  // Other pairs have their own stream.
  EXPECT_EQ(seqr.Next(0, 2), 0u);
  EXPECT_EQ(seqr.Next(0, 1), 2u);
}

TEST(SimClockFaultTest, StragglerStretchesTheBarrier) {
  fault::FaultSpec spec = MustParse("straggle=1x3.0");
  SimClock clock(2, CommModel::Mpi(), /*trace=*/false, spec);
  clock.RecordCompute(0, 1.0);
  clock.RecordCompute(1, 1.0);  // Charged as 3.0 by the plan.
  clock.EndStep();
  RunMetrics m = clock.Finish();
  EXPECT_DOUBLE_EQ(m.elapsed_seconds, 3.0);
  EXPECT_DOUBLE_EQ(m.total_compute_seconds, 4.0);
  EXPECT_DOUBLE_EQ(m.recovery_seconds, 0.0);
}

TEST(SimClockFaultTest, DropsChargeRetransmissionsAndTimeoutStall) {
  fault::FaultSpec spec =
      MustParse("seed=5,drop=0.3,retries=1000,timeout=0.25");
  SimClock clock(2, CommModel::Mpi(), /*trace=*/false, spec);
  const uint64_t frames = 100;
  const uint64_t frame_bytes = 1000;
  for (uint64_t i = 0; i < frames; ++i) {
    clock.RecordSend(0, 1, frame_bytes, 1);
  }
  clock.EndStep();
  RunMetrics m = clock.Finish();
  EXPECT_GT(m.transport_retries, 0u);
  EXPECT_EQ(m.faults_injected, m.transport_retries);  // No dup plan.
  EXPECT_EQ(m.duplicated_frames, 0u);
  // Every retransmission is a full extra frame on the wire...
  EXPECT_EQ(m.bytes_sent, (frames + m.transport_retries) * frame_bytes);
  EXPECT_EQ(m.messages_sent, frames + m.transport_retries);
  // ...and one ack timeout of stall, which extends the barrier.
  EXPECT_DOUBLE_EQ(m.recovery_seconds, 0.25 * m.transport_retries);
  EXPECT_GE(m.elapsed_seconds, m.recovery_seconds);
}

TEST(SimClockFaultTest, DuplicatesChargeOneExtraFrameNoStall) {
  fault::FaultSpec spec = MustParse("seed=5,dup=0.4");
  SimClock clock(2, CommModel::Mpi(), /*trace=*/false, spec);
  const uint64_t frames = 100;
  for (uint64_t i = 0; i < frames; ++i) clock.RecordSend(0, 1, 64, 1);
  clock.EndStep();
  RunMetrics m = clock.Finish();
  EXPECT_GT(m.duplicated_frames, 0u);
  EXPECT_EQ(m.transport_retries, 0u);
  EXPECT_EQ(m.bytes_sent, (frames + m.duplicated_frames) * 64);
  EXPECT_DOUBLE_EQ(m.recovery_seconds, 0.0);
}

TEST(SimClockFaultTest, SameRankTrafficIsNeverFaulted) {
  fault::FaultSpec spec = MustParse("seed=5,drop=0.9,retries=2");
  SimClock clock(2, CommModel::Mpi(), /*trace=*/false, spec);
  for (int i = 0; i < 1000; ++i) clock.RecordSend(1, 1, 1 << 20, 1);
  clock.EndStep();
  RunMetrics m = clock.Finish();
  EXPECT_EQ(m.bytes_sent, 0u);
  EXPECT_EQ(m.transport_retries, 0u);
}

TEST(SimClockFaultTest, ChargeRecoveryExtendsBarrierAndTrace) {
  fault::FaultSpec spec = MustParse("ckpt=1");
  SimClock clock(2, CommModel::Mpi(), /*trace=*/true, spec);
  clock.RecordCompute(0, 1.0);
  clock.ChargeRecovery(0, 0.5, 4096, "checkpoint");
  clock.ChargeRecovery(1, 0.75, 4096, "checkpoint");
  clock.NoteCheckpoint();
  clock.EndStep();
  RunMetrics m = clock.Finish();
  // The slowest rank's stall holds the barrier, on top of the compute max.
  EXPECT_DOUBLE_EQ(m.elapsed_seconds, 1.0 + 0.75);
  EXPECT_DOUBLE_EQ(m.recovery_seconds, 0.75);
  EXPECT_EQ(m.checkpoints_written, 1u);
  ASSERT_EQ(m.steps.size(), 1u);
  EXPECT_DOUBLE_EQ(m.steps[0].fault_seconds, 0.75);
  EXPECT_DOUBLE_EQ(m.steps[0].StepSeconds(), 1.75);
}

TEST(SimClockFaultTest, DisabledPlanChangesNothing) {
  SimClock base(2, CommModel::Mpi());
  SimClock faulted(2, CommModel::Mpi(), false, fault::FaultSpec{});
  for (SimClock* c : {&base, &faulted}) {
    c->RecordCompute(0, 0.5);
    c->RecordSend(0, 1, 4096, 2);
    c->EndStep();
  }
  RunMetrics a = base.Finish();
  RunMetrics b = faulted.Finish();
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(b.faults_injected, 0u);
}

// The Exchange ack/retry/dedup protocol: a lossy, duplicating link must hand
// the receiver exactly the records a perfect link would, while the wire totals
// grow by the retransmitted and duplicated frames and the receiver's dedup
// table records the discarded copies.
TEST(ExchangeFaultTest, LossyLinkDeliversIdenticalInboxes) {
  fault::FaultSpec spec =
      MustParse("seed=21,drop=0.2,dup=0.2,retries=1000,timeout=1e-4");
  SimClock clean_clock(2, CommModel::Mpi());
  SimClock lossy_clock(2, CommModel::Mpi(), false, spec);
  Exchange<int> clean(2);
  Exchange<int> lossy(2);
  const int records = 500;
  for (int i = 0; i < records; ++i) {
    clean.OutBox(0, 1).push_back(i);
    lossy.OutBox(0, 1).push_back(i);
  }
  clean.Deliver(&clean_clock);
  lossy.Deliver(&lossy_clock);

  // Dedup + retry make the faulted inbox byte-identical to the clean one.
  ASSERT_EQ(lossy.InBox(1, 0).size(), clean.InBox(1, 0).size());
  for (int i = 0; i < records; ++i) {
    EXPECT_EQ(lossy.InBox(1, 0)[i], clean.InBox(1, 0)[i]);
  }

  clean_clock.EndStep();
  lossy_clock.EndStep();
  RunMetrics cm = clean_clock.Finish();
  RunMetrics lm = lossy_clock.Finish();
  EXPECT_GT(lm.transport_retries, 0u);
  EXPECT_GT(lm.duplicated_frames, 0u);
  EXPECT_GT(lm.bytes_sent, cm.bytes_sent);
  EXPECT_GT(lm.messages_sent, cm.messages_sent);
  EXPECT_GT(lm.recovery_seconds, 0.0);
  // Each duplicated record's id landed in the receiver's dedup table.
  EXPECT_EQ(lossy.DedupTableSize(1), lm.duplicated_frames);
  EXPECT_EQ(lossy.DedupTableSize(0), 0u);
  // Extra traffic is per-record: bytes grew by exactly the faulted records.
  uint64_t extra = lm.transport_retries + lm.duplicated_frames;
  EXPECT_EQ(lm.bytes_sent, cm.bytes_sent + extra * sizeof(int));
  EXPECT_EQ(lm.messages_sent, cm.messages_sent + extra);
}

TEST(ExchangeFaultTest, FaultDecisionsAreReproducibleAcrossExchanges) {
  // Two independent runs of the same plan over the same traffic must inject
  // the same faults (the determinism the differential harness relies on).
  auto run = [](uint64_t* retries, uint64_t* dups, size_t* dedup) {
    fault::FaultSpec spec =
        MustParse("seed=33,drop=0.1,dup=0.1,retries=1000,timeout=1e-4");
    SimClock clock(3, CommModel::Mpi(), false, spec);
    Exchange<uint64_t> ex(3);
    for (int step = 0; step < 4; ++step) {
      for (int src = 0; src < 3; ++src) {
        for (int dst = 0; dst < 3; ++dst) {
          for (int i = 0; i < 50; ++i) {
            ex.OutBox(src, dst).push_back(static_cast<uint64_t>(i));
          }
        }
      }
      ex.Deliver(&clock);
      clock.EndStep();
    }
    RunMetrics m = clock.Finish();
    *retries = m.transport_retries;
    *dups = m.duplicated_frames;
    *dedup = ex.DedupTableSize(0) + ex.DedupTableSize(1) + ex.DedupTableSize(2);
  };
  uint64_t r1, d1, r2, d2;
  size_t t1, t2;
  run(&r1, &d1, &t1);
  run(&r2, &d2, &t2);
  EXPECT_GT(r1, 0u);
  EXPECT_GT(d1, 0u);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(t1, t2);
}

}  // namespace
}  // namespace maze::rt
