#include "util/freelist.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace maze::util {
namespace {

TEST(FreeListPoolTest, MakeConstructsAndDeleterReturnsBlock) {
  FreeListPool<int> pool;
  {
    PoolPtr<int> p = pool.Make(42);
    EXPECT_EQ(*p, 42);
    auto s = pool.GetStats();
    EXPECT_EQ(s.requests, 1u);
    EXPECT_EQ(s.live(), 1u);
  }
  auto s = pool.GetStats();
  EXPECT_EQ(s.freed, 1u);
  EXPECT_EQ(s.live(), 0u);
}

TEST(FreeListPoolTest, FreedBlocksAreReused) {
  FreeListPool<uint64_t> pool;
  constexpr int kRounds = 8;
  constexpr int kBatch = 1000;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<PoolPtr<uint64_t>> live;
    live.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) live.push_back(pool.Make(i));
  }
  auto s = pool.GetStats();
  EXPECT_EQ(s.requests, static_cast<uint64_t>(kRounds * kBatch));
  // Rounds after the first run mostly out of the free list, so the slab count
  // reflects one round's footprint, not eight.
  EXPECT_GE(s.reused, static_cast<uint64_t>((kRounds - 1) * kBatch));
  EXPECT_LE(s.slab_allocations, 8u);
  EXPECT_EQ(s.live(), 0u);
}

TEST(FreeListPoolTest, TinyTypesGetPointerSizedBlocks) {
  // A char block must still hold a FreeNode.
  EXPECT_GE(FreeListPool<char>::kBlockSize, sizeof(void*));
  EXPECT_GE(FreeListPool<char>::kBlockAlign, alignof(void*));
  FreeListPool<char> pool;
  std::vector<PoolPtr<char>> live;
  for (int i = 0; i < 100; ++i) live.push_back(pool.Make('x'));
  for (const auto& p : live) EXPECT_EQ(*p, 'x');
}

struct alignas(64) OverAligned {
  double payload[4];
};

TEST(FreeListPoolTest, RespectsOverAlignment) {
  FreeListPool<OverAligned> pool;
  std::vector<PoolPtr<OverAligned>> live;
  for (int i = 0; i < 300; ++i) {
    live.push_back(pool.Make());
    EXPECT_EQ(reinterpret_cast<uintptr_t>(live.back().get()) % 64, 0u);
  }
}

TEST(FreeListPoolTest, PoolPtrMovePreservesDeleter) {
  FreeListPool<int> pool;
  PoolPtr<int> a = pool.Make(7);
  PoolPtr<int> b = std::move(a);
  EXPECT_EQ(a.get(), nullptr);
  ASSERT_NE(b.get(), nullptr);
  EXPECT_EQ(*b, 7);
  b.reset();  // Must return to the pool, not leak or double-free.
  EXPECT_EQ(pool.GetStats().live(), 0u);
}

TEST(FreeListPoolTest, HeapBoxedSharesTheTypeWithoutAPool) {
  PoolPtr<int> p = HeapBoxed<int>(11);
  EXPECT_EQ(*p, 11);  // Deleter's null pool → plain delete (ASan verifies).
  FreeListPool<int> pool;  // Outlives the boxes below.
  std::vector<PoolPtr<int>> mixed;
  mixed.push_back(pool.Make(1));
  mixed.push_back(HeapBoxed<int>(2));
  EXPECT_EQ(*mixed[0] + *mixed[1], 3);
}

struct ThrowOnOdd {
  explicit ThrowOnOdd(int v) {
    if (v % 2 == 1) throw std::runtime_error("odd");
  }
};

TEST(FreeListPoolTest, ThrowingConstructorRecyclesTheBlock) {
  FreeListPool<ThrowOnOdd> pool;
  EXPECT_THROW(pool.Make(1), std::runtime_error);
  // The block went back to the free list: no live object, next Make reuses it.
  EXPECT_EQ(pool.GetStats().live(), 0u);
  PoolPtr<ThrowOnOdd> ok = pool.Make(2);
  EXPECT_NE(ok.get(), nullptr);
  EXPECT_GE(pool.GetStats().reused, 1u);
}

TEST(FreeListPoolTest, NonTrivialPayloadsDestructProperly) {
  // vector payloads exercise real destructors through Delete (leak-checked
  // under ASan).
  FreeListPool<std::vector<int>> pool;
  for (int round = 0; round < 3; ++round) {
    std::vector<PoolPtr<std::vector<int>>> live;
    for (int i = 0; i < 200; ++i) {
      live.push_back(pool.Make(100, i));  // 100 ints of value i.
    }
    EXPECT_EQ((*live[50])[0], 50);
  }
  EXPECT_EQ(pool.GetStats().live(), 0u);
}

TEST(FreeListPoolTest, CrossThreadProducerConsumerStaysBounded) {
  // Producer threads allocate, a consumer thread frees: blocks freed on the
  // consumer's stripe must flow back to producers (steal path) instead of
  // forcing unbounded slab growth.
  FreeListPool<uint64_t> pool;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::vector<PoolPtr<uint64_t>> handoff;
  std::mutex mu;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire) || !handoff.empty()) {
      std::vector<PoolPtr<uint64_t>> batch;
      {
        std::lock_guard<std::mutex> lock(mu);
        batch.swap(handoff);
      }
      batch.clear();  // Frees on the consumer's stripe.
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        PoolPtr<uint64_t> p = pool.Make(static_cast<uint64_t>(t) << 32 | i);
        std::lock_guard<std::mutex> lock(mu);
        handoff.push_back(std::move(p));
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  auto s = pool.GetStats();
  EXPECT_EQ(s.requests, static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(s.live(), 0u);
  // Bounded growth: 20k messages ride on a handful of slabs (geometric slab
  // sizes can overshoot the peak-live footprint, but never track the request
  // count), and freed blocks actually recycle across stripes.
  EXPECT_GE(s.requests / s.slab_allocations, 100u);
  EXPECT_GT(s.reused, 0u);
}

TEST(FreeListPoolTest, StatsPartitionRequests) {
  FreeListPool<int> pool;
  std::vector<PoolPtr<int>> live;
  for (int i = 0; i < 500; ++i) live.push_back(pool.Make(i));
  live.clear();
  for (int i = 0; i < 500; ++i) live.push_back(pool.Make(i));
  auto s = pool.GetStats();
  EXPECT_EQ(s.requests, 1000u);
  EXPECT_EQ(s.freed, 500u);
  EXPECT_EQ(s.live(), 500u);
  EXPECT_GT(s.slab_bytes, 0u);
  live.clear();
  EXPECT_EQ(pool.GetStats().live(), 0u);
}

}  // namespace
}  // namespace maze::util
