// Multi-seed fuzz consistency: across randomized RMAT graphs of varying skew,
// every engine agrees with the serial references on every algorithm. This is
// the repository's strongest end-to-end invariant — performance may differ by
// orders of magnitude, answers may not.
#include <gtest/gtest.h>

#include "bench_support/runner.h"
#include "core/graph.h"
#include "core/rmat.h"
#include "native/cc.h"
#include "native/reference.h"

namespace maze {
namespace {

struct FuzzCase {
  uint64_t seed;
  double a;  // RMAT skew knob.
};

std::string FuzzName(const ::testing::TestParamInfo<FuzzCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_a" +
         std::to_string(static_cast<int>(info.param.a * 100));
}

EdgeList FuzzGraph(const FuzzCase& c, bool symmetric) {
  RmatParams params{9, 5, c.a, (1.0 - c.a) / 3, (1.0 - c.a) / 3, c.seed, true};
  EdgeList el = GenerateRmat(params);
  el.Deduplicate();
  if (symmetric) el.Symmetrize();
  return el;
}

class FuzzConsistencyTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzConsistencyTest, AllEnginesAgreeOnPageRank) {
  EdgeList el = FuzzGraph(GetParam(), false);
  Graph g = Graph::FromEdges(el, GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 3;
  auto expected = native::ReferencePageRank(g, 3, opt.jump);
  for (bench::EngineKind engine : bench::AllEngines()) {
    bench::RunConfig config;
    config.num_ranks = engine == bench::EngineKind::kTaskflow ? 1 : 2;
    auto result = bench::RunPageRank(engine, el, opt, config);
    for (size_t v = 0; v < expected.size(); ++v) {
      ASSERT_NEAR(result.ranks[v], expected[v], 1e-9)
          << bench::EngineName(engine) << " vertex " << v;
    }
  }
}

TEST_P(FuzzConsistencyTest, AllEnginesAgreeOnBfs) {
  EdgeList el = FuzzGraph(GetParam(), true);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  VertexId source = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(source)) source = v;
  }
  auto expected = native::ReferenceBfs(g, source);
  for (bench::EngineKind engine : bench::AllEngines()) {
    bench::RunConfig config;
    config.num_ranks = engine == bench::EngineKind::kTaskflow ? 1 : 3;
    auto result = bench::RunBfs(engine, el, rt::BfsOptions{source}, config);
    ASSERT_EQ(result.distance, expected) << bench::EngineName(engine);
  }
}

TEST_P(FuzzConsistencyTest, AllEnginesAgreeOnTriangles) {
  EdgeList el = FuzzGraph(GetParam(), false);
  el.OrientBySmallerId();
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  uint64_t expected = native::ReferenceTriangleCount(g);
  for (bench::EngineKind engine : bench::AllEngines()) {
    bench::RunConfig config;
    config.num_ranks = engine == bench::EngineKind::kTaskflow ? 1 : 2;
    if (engine == bench::EngineKind::kBspgraph) config.bsp_phases = 7;
    auto result = bench::RunTriangleCount(engine, el, {}, config);
    ASSERT_EQ(result.triangles, expected) << bench::EngineName(engine);
  }
}

TEST_P(FuzzConsistencyTest, AllEnginesAgreeOnComponents) {
  EdgeList el = FuzzGraph(GetParam(), true);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto expected = native::ReferenceComponents(g);
  for (bench::EngineKind engine : bench::AllEngines()) {
    bench::RunConfig config;
    config.num_ranks = engine == bench::EngineKind::kTaskflow ? 1 : 2;
    auto result = bench::RunConnectedComponents(engine, el, {}, config);
    ASSERT_EQ(result.label, expected) << bench::EngineName(engine);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConsistencyTest,
                         ::testing::Values(FuzzCase{101, 0.30},
                                           FuzzCase{202, 0.45},
                                           FuzzCase{303, 0.57},
                                           FuzzCase{404, 0.65},
                                           FuzzCase{505, 0.25}),
                         FuzzName);

}  // namespace
}  // namespace maze
