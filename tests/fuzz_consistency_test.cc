// Multi-seed fuzz consistency: across randomized RMAT graphs of varying skew,
// every engine agrees with the serial references on every algorithm. This is
// the repository's strongest end-to-end invariant — performance may differ by
// orders of magnitude, answers may not.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "bench_support/runner.h"
#include "core/graph.h"
#include "core/rmat.h"
#include "core/weighted_graph.h"
#include "native/cc.h"
#include "native/reference.h"
#include "native/sssp.h"
#include "rt/fault.h"

namespace maze {
namespace {

struct FuzzCase {
  uint64_t seed;
  double a;  // RMAT skew knob.
};

std::string FuzzName(const ::testing::TestParamInfo<FuzzCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_a" +
         std::to_string(static_cast<int>(info.param.a * 100));
}

EdgeList FuzzGraph(const FuzzCase& c, bool symmetric) {
  RmatParams params{9, 5, c.a, (1.0 - c.a) / 3, (1.0 - c.a) / 3, c.seed, true};
  EdgeList el = GenerateRmat(params);
  el.Deduplicate();
  if (symmetric) el.Symmetrize();
  return el;
}

class FuzzConsistencyTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzConsistencyTest, AllEnginesAgreeOnPageRank) {
  EdgeList el = FuzzGraph(GetParam(), false);
  Graph g = Graph::FromEdges(el, GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 3;
  auto expected = native::ReferencePageRank(g, 3, opt.jump);
  for (bench::EngineKind engine : bench::AllEngines()) {
    bench::RunConfig config;
    config.num_ranks = engine == bench::EngineKind::kTaskflow ? 1 : 2;
    auto result = bench::RunPageRank(engine, el, opt, config);
    for (size_t v = 0; v < expected.size(); ++v) {
      ASSERT_NEAR(result.ranks[v], expected[v], 1e-9)
          << bench::EngineName(engine) << " vertex " << v;
    }
  }
}

TEST_P(FuzzConsistencyTest, AllEnginesAgreeOnBfs) {
  EdgeList el = FuzzGraph(GetParam(), true);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  VertexId source = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(source)) source = v;
  }
  auto expected = native::ReferenceBfs(g, source);
  for (bench::EngineKind engine : bench::AllEngines()) {
    bench::RunConfig config;
    config.num_ranks = engine == bench::EngineKind::kTaskflow ? 1 : 3;
    auto result = bench::RunBfs(engine, el, rt::BfsOptions{source}, config);
    ASSERT_EQ(result.distance, expected) << bench::EngineName(engine);
  }
}

TEST_P(FuzzConsistencyTest, AllEnginesAgreeOnTriangles) {
  EdgeList el = FuzzGraph(GetParam(), false);
  el.OrientBySmallerId();
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  uint64_t expected = native::ReferenceTriangleCount(g);
  for (bench::EngineKind engine : bench::AllEngines()) {
    bench::RunConfig config;
    config.num_ranks = engine == bench::EngineKind::kTaskflow ? 1 : 2;
    if (engine == bench::EngineKind::kBspgraph) config.bsp_phases = 7;
    auto result = bench::RunTriangleCount(engine, el, {}, config);
    ASSERT_EQ(result.triangles, expected) << bench::EngineName(engine);
  }
}

TEST_P(FuzzConsistencyTest, AllEnginesAgreeOnComponents) {
  EdgeList el = FuzzGraph(GetParam(), true);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto expected = native::ReferenceComponents(g);
  for (bench::EngineKind engine : bench::AllEngines()) {
    bench::RunConfig config;
    config.num_ranks = engine == bench::EngineKind::kTaskflow ? 1 : 2;
    auto result = bench::RunConnectedComponents(engine, el, {}, config);
    ASSERT_EQ(result.label, expected) << bench::EngineName(engine);
  }
}

TEST_P(FuzzConsistencyTest, SsspEnginesAgreeWithDijkstra) {
  const FuzzCase fuzz = GetParam();
  EdgeList el = FuzzGraph(fuzz, true);
  WeightedGraph g = WeightedGraph::FromEdgesWithRandomWeights(el, 8.0f, fuzz.seed);
  VertexId source = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(source)) source = v;
  }
  auto expected = native::ReferenceDijkstra(g, source);
  for (bench::EngineKind engine : bench::AllEngines()) {
    if (!bench::EngineSupportsSssp(engine)) continue;
    bench::RunConfig config;
    config.num_ranks = engine == bench::EngineKind::kTaskflow ? 1 : 4;
    auto result = bench::RunSssp(engine, g, rt::SsspOptions{source}, config);
    ASSERT_EQ(result.distance.size(), expected.size());
    for (size_t v = 0; v < expected.size(); ++v) {
      if (std::isinf(expected[v])) {
        ASSERT_TRUE(std::isinf(result.distance[v]))
            << bench::EngineName(engine) << " vertex " << v;
      } else {
        ASSERT_NEAR(result.distance[v], expected[v], 1e-4)
            << bench::EngineName(engine) << " vertex " << v;
      }
    }
  }
}

// Fault mode: the same agreement must hold while a seeded fault plan is
// dropping, duplicating, and slowing traffic underneath every engine (and
// crashing a rank mid-run under the checkpointing BSP engine). Recovery is
// expected to be invisible to the answers, not just "mostly harmless".
TEST_P(FuzzConsistencyTest, AllEnginesAgreeOnPageRankUnderFaults) {
  const FuzzCase fuzz = GetParam();
  EdgeList el = FuzzGraph(fuzz, false);
  Graph g = Graph::FromEdges(el, GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 3;
  auto expected = native::ReferencePageRank(g, 3, opt.jump);
  // Derive the plan from the fuzz seed so every case injects different faults.
  std::string plan = "seed=" + std::to_string(fuzz.seed) +
                     ",drop=0.04,dup=0.04,retries=64,timeout=1e-4,"
                     "straggle=0x2.0,ckpt=2,crash=1@1,ckpt_lat=0.001";
  uint64_t total_faults = 0;
  for (bench::EngineKind engine : bench::AllEngines()) {
    bench::RunConfig config;
    config.num_ranks = engine == bench::EngineKind::kTaskflow ? 1 : 4;
    config.faults = rt::fault::ParseFaultSpec(plan).value();
    auto result = bench::RunPageRank(engine, el, opt, config);
    for (size_t v = 0; v < expected.size(); ++v) {
      ASSERT_NEAR(result.ranks[v], expected[v], 1e-9)
          << bench::EngineName(engine) << " vertex " << v;
    }
    total_faults += result.metrics.faults_injected;
    if (engine == bench::EngineKind::kBspgraph) {
      EXPECT_EQ(result.metrics.crash_restarts, 1u);
    }
  }
  // Per-engine frame counts vary (matblas's 2-D grid sends a handful of large
  // frames), but across all engines a 4% plan must have fired somewhere.
  EXPECT_GT(total_faults, 0u);
}

TEST_P(FuzzConsistencyTest, AllEnginesAgreeOnBfsUnderFaults) {
  const FuzzCase fuzz = GetParam();
  EdgeList el = FuzzGraph(fuzz, true);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  VertexId source = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(source)) source = v;
  }
  auto expected = native::ReferenceBfs(g, source);
  std::string plan = "seed=" + std::to_string(fuzz.seed ^ 0xbf5) +
                     ",drop=0.05,retries=64,timeout=1e-4,straggle=1x1.5";
  for (bench::EngineKind engine : bench::AllEngines()) {
    bench::RunConfig config;
    config.num_ranks = engine == bench::EngineKind::kTaskflow ? 1 : 3;
    config.faults = rt::fault::ParseFaultSpec(plan).value();
    auto result = bench::RunBfs(engine, el, rt::BfsOptions{source}, config);
    ASSERT_EQ(result.distance, expected) << bench::EngineName(engine);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConsistencyTest,
                         ::testing::Values(FuzzCase{101, 0.30},
                                           FuzzCase{202, 0.45},
                                           FuzzCase{303, 0.57},
                                           FuzzCase{404, 0.65},
                                           FuzzCase{505, 0.25}),
                         FuzzName);

}  // namespace
}  // namespace maze
