// The lowering proof for the gmat engine, in three layers:
//  1. kernel exactness — each tile kernel reproduces, message for message, the
//     directly-interpreted semantics "combine the frontier in-neighbors'
//     payloads in ascending source order";
//  2. semiring-adapter algebra — identity (absence ⊕ m = m), annihilator (a
//     source outside the frontier contributes nothing), and the MinPlus laws
//     the SSSP path leans on;
//  3. per-superstep engine equality — a truncated gmat::Engine run and a
//     truncated vertex::SyncEngine run land in the *identical* vertex state
//     after every superstep prefix k = 1..K, for combinable (PageRank, BFS,
//     CC) and non-combinable (triangle) programs alike.
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/edge_list.h"
#include "core/graph.h"
#include "core/types.h"
#include "gmat/engine.h"
#include "gmat/frontier.h"
#include "gmat/lower.h"
#include "matrix/semiring.h"
#include "rt/algo.h"
#include "tests/test_graphs.h"
#include "util/bitvector.h"
#include "vertex/engine.h"
#include "vertex/programs.h"

namespace maze::gmat {
namespace {

using vertex::BfsProgram;
using vertex::CcProgram;
using vertex::PageRankProgram;
using vertex::TriangleProgram;

// A little combinable program whose Combine is associative (the semiring axiom
// the tile-partial folds rely on) but NOT commutative: sequence concatenation.
// Any kernel that reorders per-destination delivery fails these tests loudly
// instead of accidentally passing the way min/+ would.
struct OrderSensitiveCombine {
  using Message = std::vector<uint32_t>;
  static Message Combine(Message a, const Message& b) {
    a.insert(a.end(), b.begin(), b.end());
    return a;
  }
};

// Message-type shim for the free-monoid kernel (only P::Message is consulted).
struct U64ListShim {
  using Message = uint64_t;
};

// Directly-interpreted reference for one lowered superstep: for every
// destination, fold the frontier in-neighbors' payloads in ascending global
// source order; destinations with no frontier in-neighbor keep the identity
// (absence).
template <typename Combiner, typename Message>
void ReferenceSpmv(const EdgeList& edges, const Bitvector& x_has,
                   const std::vector<Message>& payload,
                   std::vector<Message>* acc, Bitvector* has) {
  // Gather (src, dst) pairs sorted by (dst, src).
  std::vector<std::pair<VertexId, VertexId>> by_dst;
  for (const Edge& e : edges.edges) by_dst.push_back({e.dst, e.src});
  std::sort(by_dst.begin(), by_dst.end());
  for (const auto& [dst, src] : by_dst) {
    if (!x_has.Test(src)) continue;  // ⊗-annihilator.
    if (has->Test(dst)) {
      (*acc)[dst] = Combiner::Combine((*acc)[dst], payload[src]);
    } else {
      (*acc)[dst] = payload[src];  // identity ⊕ m = m.
      has->Set(dst);
    }
  }
}

EdgeList TinyGraph() {
  EdgeList el;
  el.num_vertices = 10;
  // Hand-built: fan-in onto 3 and 7, a self-loop, a dangling vertex (9), and
  // cross-tile edges for every 2x2-grid tile when lowered at 4 ranks.
  el.edges = {{0, 3}, {1, 3}, {2, 3}, {5, 3}, {8, 3}, {0, 7}, {6, 7},
              {7, 7}, {9, 7}, {2, 0}, {4, 1}, {8, 6}, {3, 8}, {1, 9}};
  el.Deduplicate();
  return el;
}

struct KernelCase {
  int ranks;  // Grid = sqrt(ranks) x sqrt(ranks).
};

class LowerKernelTest : public ::testing::TestWithParam<KernelCase> {};

// Runs every combinable kernel over all tiles of the lowered matrix (grid rows
// in any order, tiles within a row in ascending column order — the engine's
// schedule) and compares against ReferenceSpmv.
template <typename P>
void CheckCombinableKernels(const EdgeList& el, const Bitvector& x_has,
                            const std::vector<typename P::Message>& payload,
                            int ranks) {
  using Message = typename P::Message;
  const VertexId n = el.num_vertices;
  LoweredMatrix lowered = LoweredMatrix::Build(el, ranks);
  const int side = lowered.side();

  std::vector<Message> want(n);
  Bitvector want_has(n);
  ReferenceSpmv<P, Message>(el, x_has, payload, &want, &want_has);

  std::vector<uint32_t> frontier;
  x_has.AppendSetBits(&frontier);

  for (int kernel = 0; kernel < 3; ++kernel) {
    std::vector<Message> acc(n);
    Bitvector has(n);
    for (int i = 0; i < side; ++i) {
      for (int j = 0; j < side; ++j) {
        const matrix::Tile& t = lowered.tile(i, j);
        switch (kernel) {
          case 0:
            // Dense is only sound when the frontier covers every column the
            // tile can read; emulate by masking first, then dense-folding.
            // Instead run it only when x covers all sources (checked below).
            LowerTileRowMasked<P>(t, x_has, payload, &acc, &has);
            break;
          case 1: {
            const uint32_t* lo = frontier.data();
            const uint32_t* end = frontier.data() + frontier.size();
            while (lo < end && *lo < t.col_begin) ++lo;
            const uint32_t* hi = lo;
            while (hi < end && *hi < t.col_end) ++hi;
            LowerTileColSparse<P>(lowered.tileT(i, j), t.col_begin, lo,
                                  static_cast<size_t>(hi - lo), payload, &acc,
                                  &has);
            break;
          }
          case 2: {
            // Dense kernel: legal only on the all-broadcasters frontier; skip
            // this variant when the frontier is partial.
            bool all = true;
            for (const Edge& e : el.edges) all = all && x_has.Test(e.src);
            if (!all) continue;
            LowerTileRowDense<P>(t, payload, &acc, &has);
            break;
          }
        }
      }
    }
    if (kernel == 2) {
      bool all = true;
      for (const Edge& e : el.edges) all = all && x_has.Test(e.src);
      if (!all) continue;
    }
    for (VertexId v = 0; v < n; ++v) {
      ASSERT_EQ(has.Test(v), want_has.Test(v))
          << "kernel " << kernel << " ranks " << ranks << " vertex " << v;
      if (want_has.Test(v)) {
        ASSERT_EQ(acc[v], want[v])
            << "kernel " << kernel << " ranks " << ranks << " vertex " << v;
      }
    }
  }
}

TEST_P(LowerKernelTest, CombinableKernelsMatchInterpretedFold) {
  EdgeList el = TinyGraph();
  const VertexId n = el.num_vertices;
  // Full frontier: every vertex broadcasts a distinct payload. The
  // order-sensitive combiner makes per-destination delivery order observable.
  std::vector<std::vector<uint32_t>> payload(n);
  Bitvector full(n);
  for (VertexId v = 0; v < n; ++v) {
    payload[v] = {1000 + v};
    full.Set(v);
  }
  CheckCombinableKernels<OrderSensitiveCombine>(el, full, payload,
                                                GetParam().ranks);

  // Partial frontier: only even vertices broadcast; odd sources must act as
  // the ⊗-annihilator in every kernel.
  Bitvector partial(n);
  for (VertexId v = 0; v < n; v += 2) partial.Set(v);
  CheckCombinableKernels<OrderSensitiveCombine>(el, partial, payload,
                                                GetParam().ranks);

  // Empty frontier: the SpMV of the zero vector is the zero vector.
  Bitvector empty(n);
  CheckCombinableKernels<OrderSensitiveCombine>(el, empty, payload,
                                                GetParam().ranks);
}

TEST_P(LowerKernelTest, ListKernelMatchesInterpretedConcatenation) {
  EdgeList el = TinyGraph();
  const VertexId n = el.num_vertices;
  LoweredMatrix lowered = LoweredMatrix::Build(el, GetParam().ranks);
  const int side = lowered.side();

  std::vector<uint64_t> payload(n);
  Bitvector x_has(n);
  for (VertexId v = 0; v < n; ++v) payload[v] = 2000 + v;
  for (VertexId v = 0; v < n; v += 3) x_has.Set(v);

  std::vector<std::vector<uint64_t>> lists(n);
  Bitvector has(n);
  for (int i = 0; i < side; ++i) {
    for (int j = 0; j < side; ++j) {
      LowerTileRowList<U64ListShim>(lowered.tile(i, j), x_has, payload,
                                         &lists, &has);
    }
  }

  // Free monoid reference: messages per destination in ascending source order.
  std::vector<std::pair<VertexId, VertexId>> by_dst;
  for (const Edge& e : el.edges) by_dst.push_back({e.dst, e.src});
  std::sort(by_dst.begin(), by_dst.end());
  std::vector<std::vector<uint64_t>> want(n);
  for (const auto& [dst, src] : by_dst) {
    if (x_has.Test(src)) want[dst].push_back(payload[src]);
  }
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_EQ(has.Test(v), !want[v].empty()) << "vertex " << v;
    EXPECT_EQ(lists[v], want[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, LowerKernelTest,
                         ::testing::Values(KernelCase{1}, KernelCase{4},
                                           KernelCase{16}),
                         [](const ::testing::TestParamInfo<KernelCase>& info) {
                           return "ranks" + std::to_string(info.param.ranks);
                         });

// --- Semiring-adapter algebra -------------------------------------------------

TEST(ProgramSemiringTest, IdentityLawOverwritesNeverCombines) {
  // `first` means the slot holds the identity; Accumulate must overwrite, so
  // programs whose Message has no representable ⊕-identity stay exact. A
  // poisoned slot proves Combine was not consulted.
  std::vector<uint32_t> slot = {0xdead, 0xbeef};
  ProgramSemiring<OrderSensitiveCombine>::Accumulate(&slot, true, {7});
  EXPECT_EQ(slot, (std::vector<uint32_t>{7}));
  ProgramSemiring<OrderSensitiveCombine>::Accumulate(&slot, false, {3});
  EXPECT_EQ(slot, (std::vector<uint32_t>{7, 3}));  // Order preserved.
}

TEST(ProgramSemiringTest, MinCombineMatchesBfsProgram) {
  uint32_t slot = kInfiniteDistance;
  ProgramSemiring<BfsProgram>::Accumulate(&slot, true, 9);
  ProgramSemiring<BfsProgram>::Accumulate(&slot, false, 4);
  ProgramSemiring<BfsProgram>::Accumulate(&slot, false, 11);
  EXPECT_EQ(slot, 4u);
}

TEST(ProgramSemiringTest, AnnihilatorKeepsNonFrontierSourcesSilent) {
  // A destination all of whose in-neighbors are outside the frontier must end
  // with its has-bit clear and its accumulator untouched.
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 2}, {1, 2}, {2, 3}};
  LoweredMatrix lowered = LoweredMatrix::Build(el, 1);
  Bitvector x_has(4);
  x_has.Set(2);  // Only vertex 2 broadcasts: dst 2 hears nothing, dst 3 hears 2.
  std::vector<std::vector<uint32_t>> payload = {{11}, {22}, {33}, {44}};
  std::vector<std::vector<uint32_t>> acc(4, std::vector<uint32_t>{0xabad});
  Bitvector has(4);
  LowerTileRowMasked<OrderSensitiveCombine>(lowered.tile(0, 0), x_has, payload,
                                            &acc, &has);
  EXPECT_FALSE(has.Test(0));
  EXPECT_FALSE(has.Test(1));
  EXPECT_FALSE(has.Test(2));
  // Untouched: absence stands in for the identity, never a fake zero.
  EXPECT_EQ(acc[2], (std::vector<uint32_t>{0xabad}));
  EXPECT_TRUE(has.Test(3));
  EXPECT_EQ(acc[3], (std::vector<uint32_t>{33}));
}

TEST(ProgramSemiringTest, MinPlusLawsBackTheSsspLowering) {
  using Semi = matrix::MinPlus<float>;
  const float zero = Semi::Zero();
  // Zero is the Add-identity and the Multiply-annihilator — the two laws the
  // frontier-synchronous Bellman-Ford relaxation relies on.
  EXPECT_EQ(Semi::Add(zero, 3.5f), 3.5f);
  EXPECT_EQ(Semi::Add(3.5f, zero), 3.5f);
  EXPECT_EQ(Semi::Multiply(zero, 3.5f), zero);
  EXPECT_EQ(Semi::Multiply(1.5f, 2.25f), 3.75f);
  EXPECT_EQ(Semi::Add(2.0f, 5.0f), 2.0f);
}

// --- Per-superstep engine equality --------------------------------------------
// Truncated runs: after every superstep prefix k, the compiled engine's vertex
// state must be *identical* (operator==, not approximately equal) to the
// interpreted engine's. At one rank both engines fold per-destination in
// ascending source order, so even floating-point PageRank matches bitwise.

template <typename P, typename MakeProgram>
void CheckPerSuperstepEquality(const EdgeList& el, const Graph& g,
                               MakeProgram make, int max_supersteps,
                               int ranks) {
  rt::EngineConfig config;
  config.num_ranks = ranks;
  config.comm = rt::CommModel::Mpi();
  for (int k = 1; k <= max_supersteps; ++k) {
    vertex::SyncEngine<P> interp(g, config);
    P p1 = make();
    int interp_steps = interp.Run(&p1, k);
    interp.Finish();

    Engine<P> compiled(el, g, config);
    P p2 = make();
    int compiled_steps = compiled.Run(&p2, k);
    compiled.Finish();

    ASSERT_EQ(compiled_steps, interp_steps) << "prefix " << k;
    ASSERT_EQ(compiled.values(), interp.values()) << "prefix " << k;
    if (interp_steps < k) break;  // Both converged; longer prefixes repeat.
  }
}

TEST(PerSuperstepTest, PageRankStateMatchesInterpreterEveryPrefix) {
  EdgeList el = testgraphs::SmallRmat(7, 6, 13);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  CheckPerSuperstepEquality<PageRankProgram>(
      el, g, [&] { return PageRankProgram{&g, 4, 0.15}; }, 5, 1);
}

TEST(PerSuperstepTest, BfsStateMatchesInterpreterEveryPrefix) {
  EdgeList el = testgraphs::SmallRmatUndirected(7, 6, 13);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  CheckPerSuperstepEquality<BfsProgram>(
      el, g, [] { return BfsProgram{0}; },
      static_cast<int>(g.num_vertices()) + 2, 1);
}

TEST(PerSuperstepTest, CcStateMatchesInterpreterEveryPrefix) {
  EdgeList el = testgraphs::SmallRmatUndirected(7, 6, 21);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  CheckPerSuperstepEquality<CcProgram>(el, g, [] { return CcProgram{}; }, 24,
                                       1);
}

TEST(PerSuperstepTest, TriangleListStateMatchesInterpreterEveryPrefix) {
  EdgeList el = testgraphs::SmallRmatOriented(7, 4, 13);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  CheckPerSuperstepEquality<TriangleProgram>(
      el, g, [&] { return TriangleProgram{&g}; }, 2, 1);
}

}  // namespace
}  // namespace maze::gmat
