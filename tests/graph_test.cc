#include "core/graph.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace maze {
namespace {

// The 4-vertex example graph of Figure 2: edges 0->1, 0->2, 1->2, 1->3, 2->3.
EdgeList Figure2Graph() {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}};
  return el;
}

TEST(GraphTest, BuildsOutAndInCsr) {
  Graph g = Graph::FromEdges(Figure2Graph());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  ASSERT_TRUE(g.has_out());
  ASSERT_TRUE(g.has_in());

  EXPECT_EQ(std::vector<VertexId>(g.OutNeighbors(0).begin(),
                                  g.OutNeighbors(0).end()),
            (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(std::vector<VertexId>(g.OutNeighbors(3).begin(),
                                  g.OutNeighbors(3).end()),
            std::vector<VertexId>{});
  EXPECT_EQ(std::vector<VertexId>(g.InNeighbors(3).begin(),
                                  g.InNeighbors(3).end()),
            (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(std::vector<VertexId>(g.InNeighbors(0).begin(),
                                  g.InNeighbors(0).end()),
            std::vector<VertexId>{});
}

TEST(GraphTest, DegreesMatchAdjacency) {
  Graph g = Graph::FromEdges(Figure2Graph());
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(1), 2u);
  EXPECT_EQ(g.OutDegree(2), 1u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.InDegree(2), 2u);
}

TEST(GraphTest, DirectionSelection) {
  Graph out_only = Graph::FromEdges(Figure2Graph(), GraphDirections::kOutOnly);
  EXPECT_TRUE(out_only.has_out());
  EXPECT_FALSE(out_only.has_in());

  Graph in_only = Graph::FromEdges(Figure2Graph(), GraphDirections::kInOnly);
  EXPECT_FALSE(in_only.has_out());
  EXPECT_TRUE(in_only.has_in());
}

TEST(GraphTest, AdjacencyListsAreSorted) {
  EdgeList el;
  el.num_vertices = 5;
  el.edges = {{0, 4}, {0, 1}, {0, 3}, {0, 2}};
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto n = g.OutNeighbors(0);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(GraphTest, InOutEdgeCountsAgree) {
  EdgeList el;
  el.num_vertices = 100;
  for (VertexId i = 0; i < 99; ++i) el.edges.push_back({i, i + 1});
  Graph g = Graph::FromEdges(el);
  EdgeId out_total = 0;
  EdgeId in_total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out_total += g.OutDegree(v);
    in_total += g.InDegree(v);
  }
  EXPECT_EQ(out_total, g.num_edges());
  EXPECT_EQ(in_total, g.num_edges());
}

TEST(GraphTest, EmptyGraph) {
  EdgeList el;
  el.num_vertices = 3;
  Graph g = Graph::FromEdges(el);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.OutDegree(0), 0u);
  EXPECT_TRUE(g.OutNeighbors(2).empty());
}

TEST(GraphTest, MemoryBytesIsPositiveAndScales) {
  EdgeList small = Figure2Graph();
  EdgeList big;
  big.num_vertices = 1000;
  for (VertexId i = 0; i + 1 < 1000; ++i) big.edges.push_back({i, i + 1});
  EXPECT_LT(Graph::FromEdges(small).MemoryBytes(),
            Graph::FromEdges(big).MemoryBytes());
}

}  // namespace
}  // namespace maze
