#include "core/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace maze {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

EdgeList SampleEdges() {
  EdgeList el;
  el.num_vertices = 10;
  el.edges = {{0, 1}, {1, 2}, {9, 0}, {3, 7}};
  return el;
}

TEST(IoTest, TextRoundTrip) {
  std::string path = TempPath("graph.txt");
  EdgeList original = SampleEdges();
  ASSERT_TRUE(WriteEdgeListText(original, path).ok());
  auto loaded = ReadEdgeListText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_vertices, original.num_vertices);
  EXPECT_EQ(loaded.value().edges, original.edges);
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRoundTrip) {
  std::string path = TempPath("graph.bin");
  EdgeList original = SampleEdges();
  ASSERT_TRUE(WriteEdgeListBinary(original, path).ok());
  auto loaded = ReadEdgeListBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_vertices, original.num_vertices);
  EXPECT_EQ(loaded.value().edges, original.edges);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIoError) {
  auto result = ReadEdgeListText("/nonexistent/dir/graph.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(IoTest, MalformedLineIsInvalidArgument) {
  std::string path = TempPath("bad.txt");
  FILE* f = fopen(path.c_str(), "w");
  fputs("0 1\nnot an edge\n", f);
  fclose(f);
  auto result = ReadEdgeListText(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, UndeclaredVertexCountInferred) {
  std::string path = TempPath("nover.txt");
  FILE* f = fopen(path.c_str(), "w");
  fputs("0 5\n2 3\n", f);
  fclose(f);
  auto result = ReadEdgeListText(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_vertices, 6u);
  std::remove(path.c_str());
}

TEST(IoTest, EdgeIdBeyondDeclaredCountRejected) {
  std::string path = TempPath("overflow.txt");
  FILE* f = fopen(path.c_str(), "w");
  fputs("# vertices: 3\n0 5\n", f);
  fclose(f);
  auto result = ReadEdgeListText(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, BadMagicRejected) {
  std::string path = TempPath("badmagic.bin");
  FILE* f = fopen(path.c_str(), "wb");
  uint64_t garbage[3] = {0x1234, 5, 0};
  fwrite(garbage, sizeof(garbage), 1, f);
  fclose(f);
  auto result = ReadEdgeListBinary(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, EmptyGraphRoundTrips) {
  std::string path = TempPath("empty.bin");
  EdgeList empty;
  empty.num_vertices = 42;
  ASSERT_TRUE(WriteEdgeListBinary(empty, path).ok());
  auto loaded = ReadEdgeListBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_vertices, 42u);
  EXPECT_TRUE(loaded.value().edges.empty());
  std::remove(path.c_str());
}

TEST(IoTest, MatrixMarketRoundTrip) {
  std::string path = TempPath("graph.mtx");
  EdgeList original = SampleEdges();
  ASSERT_TRUE(WriteMatrixMarket(original, path).ok());
  auto loaded = ReadMatrixMarket(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_vertices, original.num_vertices);
  EXPECT_EQ(loaded.value().edges, original.edges);
  std::remove(path.c_str());
}

TEST(IoTest, MatrixMarketSymmetricExpandsMirroredEdges) {
  std::string path = TempPath("sym.mtx");
  FILE* f = fopen(path.c_str(), "w");
  fputs("%%MatrixMarket matrix coordinate pattern symmetric\n", f);
  fputs("% a comment line\n", f);
  fputs("3 3 2\n1 2\n2 3\n", f);
  fclose(f);
  auto loaded = ReadMatrixMarket(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().edges,
            (std::vector<Edge>{{0, 1}, {1, 0}, {1, 2}, {2, 1}}));
  std::remove(path.c_str());
}

TEST(IoTest, MatrixMarketIgnoresValueColumn) {
  std::string path = TempPath("vals.mtx");
  FILE* f = fopen(path.c_str(), "w");
  fputs("%%MatrixMarket matrix coordinate real general\n", f);
  fputs("2 2 1\n1 2 3.75\n", f);
  fclose(f);
  auto loaded = ReadMatrixMarket(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().edges, (std::vector<Edge>{{0, 1}}));
  std::remove(path.c_str());
}

TEST(IoTest, MatrixMarketRejectsMissingBanner) {
  std::string path = TempPath("nobanner.mtx");
  FILE* f = fopen(path.c_str(), "w");
  fputs("3 3 1\n1 2\n", f);
  fclose(f);
  auto loaded = ReadMatrixMarket(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, MatrixMarketRejectsZeroBasedIndices) {
  std::string path = TempPath("zerobased.mtx");
  FILE* f = fopen(path.c_str(), "w");
  fputs("%%MatrixMarket matrix coordinate pattern general\n", f);
  fputs("3 3 1\n0 2\n", f);
  fclose(f);
  auto loaded = ReadMatrixMarket(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(IoTest, MatrixMarketRejectsTruncatedEntries) {
  std::string path = TempPath("short.mtx");
  FILE* f = fopen(path.c_str(), "w");
  fputs("%%MatrixMarket matrix coordinate pattern general\n", f);
  fputs("3 3 5\n1 2\n", f);
  fclose(f);
  auto loaded = ReadMatrixMarket(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace maze
