// A minimal recursive-descent JSON validator shared by the obs/resource tests:
// enough to prove an export is well-formed without a JSON library dependency.
#ifndef MAZE_TESTS_JSON_CHECKER_H_
#define MAZE_TESTS_JSON_CHECKER_H_

#include <cctype>
#include <cstddef>
#include <string>

namespace maze::testutil {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

inline size_t CountOccurrences(const std::string& haystack,
                               const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

}  // namespace maze::testutil

#endif  // MAZE_TESTS_JSON_CHECKER_H_
