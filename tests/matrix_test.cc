#include "matrix/algorithms.h"

#include <gtest/gtest.h>

#include "matrix/dist_matrix.h"
#include "matrix/semiring.h"
#include "native/cf.h"
#include "native/reference.h"
#include "tests/test_graphs.h"

namespace maze::matrix {
namespace {

using testgraphs::SmallRmat;
using testgraphs::SmallRmatOriented;
using testgraphs::SmallRmatUndirected;

rt::EngineConfig Config(int ranks = 1) {
  rt::EngineConfig config;
  config.num_ranks = ranks;
  config.comm = DefaultComm();
  return config;
}

TEST(SemiringTest, PlusTimes) {
  using SR = PlusTimes<double>;
  EXPECT_EQ(SR::Zero(), 0.0);
  EXPECT_EQ(SR::Add(2.0, 3.0), 5.0);
  EXPECT_EQ(SR::Multiply(2.0, 3.0), 6.0);
}

TEST(SemiringTest, MinPlusShortestPathStep) {
  using SR = MinPlus<uint32_t>;
  EXPECT_EQ(SR::Add(3u, 5u), 3u);
  EXPECT_EQ(SR::Multiply(3u, 5u), 8u);
  // Zero is the annihilator of Multiply and identity of Add.
  EXPECT_EQ(SR::Multiply(SR::Zero(), 5u), SR::Zero());
  EXPECT_EQ(SR::Add(SR::Zero(), 5u), 5u);
}

TEST(DistMatrixTest, TilesPartitionEveryEdge) {
  EdgeList el = SmallRmat(9, 4);
  for (int ranks : {1, 4, 16}) {
    DistMatrix m = DistMatrix::FromEdges(el, ranks);
    EdgeId total = 0;
    for (int r = 0; r < m.num_ranks(); ++r) total += m.tile(r).nnz();
    EXPECT_EQ(total, el.edges.size()) << ranks << " ranks";
  }
}

TEST(DistMatrixTest, TileRangesAreConsistent) {
  EdgeList el = SmallRmat(8, 4);
  DistMatrix m = DistMatrix::FromEdges(el, 4);
  for (int i = 0; i < m.grid().side; ++i) {
    for (int j = 0; j < m.grid().side; ++j) {
      const Tile& t = m.tile(i, j);
      EXPECT_EQ(t.row_begin, m.RangeBegin(i));
      EXPECT_EQ(t.col_begin, m.RangeBegin(j));
      for (VertexId r = 0; r < t.num_rows(); ++r) {
        for (EdgeId e = t.offsets[r]; e < t.offsets[r + 1]; ++e) {
          EXPECT_GE(t.sources[e], t.col_begin);
          EXPECT_LT(t.sources[e], t.col_end);
        }
      }
    }
  }
}

TEST(DistMatrixTest, GatherFormReconstructsInNeighbors) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}};  // Figure 2.
  DistMatrix m = DistMatrix::FromEdges(el, 4);
  // In-neighbors of vertex 3 are {1, 2} regardless of tiling.
  std::vector<VertexId> in3;
  for (int i = 0; i < m.grid().side; ++i) {
    for (int j = 0; j < m.grid().side; ++j) {
      const Tile& t = m.tile(i, j);
      if (3 < t.row_begin || 3 >= t.row_end) continue;
      VertexId r = 3 - t.row_begin;
      for (EdgeId e = t.offsets[r]; e < t.offsets[r + 1]; ++e) {
        in3.push_back(t.sources[e]);
      }
    }
  }
  std::sort(in3.begin(), in3.end());
  EXPECT_EQ(in3, (std::vector<VertexId>{1, 2}));
}

TEST(MatblasPageRankTest, MatchesReference) {
  EdgeList el = SmallRmat();
  Graph g = Graph::FromEdges(el, GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 5;
  auto result = PageRank(el, opt, Config());
  auto expected = native::ReferencePageRank(g, 5, opt.jump);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], expected[v], 1e-9) << v;
  }
}

class MatblasRanksTest : public ::testing::TestWithParam<int> {};

TEST_P(MatblasRanksTest, PageRankInvariantToGridSize) {
  EdgeList el = SmallRmat(9);
  Graph g = Graph::FromEdges(el, GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 3;
  auto result = PageRank(el, opt, Config(GetParam()));
  auto expected = native::ReferencePageRank(g, 3, opt.jump);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], expected[v], 1e-9);
  }
}

TEST_P(MatblasRanksTest, BfsMatchesReference) {
  EdgeList el = SmallRmatUndirected(9);
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto result = Bfs(el, rt::BfsOptions{2}, Config(GetParam()));
  EXPECT_EQ(result.distance, native::ReferenceBfs(g, 2));
}

TEST_P(MatblasRanksTest, TriangleCountMatchesReference) {
  Graph g = Graph::FromEdges(SmallRmatOriented(9), GraphDirections::kOutOnly);
  auto result = TriangleCount(g, {}, Config(GetParam()));
  EXPECT_EQ(result.triangles, native::ReferenceTriangleCount(g));
}

INSTANTIATE_TEST_SUITE_P(Grids, MatblasRanksTest, ::testing::Values(1, 4, 9, 16));

TEST(MatblasTriangleTest, ChargesA2MaterializationMemory) {
  // The A^2 intermediate must dominate the memory metric relative to the graph
  // itself (the paper's CombBLAS OOM mechanism).
  Graph g = Graph::FromEdges(SmallRmatOriented(11, 12), GraphDirections::kOutOnly);
  auto result = TriangleCount(g, {}, Config(1));
  EXPECT_GT(result.metrics.memory_peak_bytes, g.MemoryBytes());
}

TEST(MatblasCfTest, GdMatchesNativeGd) {
  BipartiteGraph g = testgraphs::SmallRatings(9).ToGraph();
  rt::CfOptions opt;
  opt.method = rt::CfMethod::kGd;
  opt.k = 4;
  opt.iterations = 3;
  auto mb = CollaborativeFiltering(g, opt, Config(4));
  auto nat = native::CollaborativeFiltering(g, opt, rt::EngineConfig{});
  for (size_t i = 0; i < nat.user_factors.size(); ++i) {
    ASSERT_NEAR(mb.user_factors[i], nat.user_factors[i], 1e-9) << i;
  }
  EXPECT_NEAR(mb.final_rmse, nat.final_rmse, 1e-9);
}

TEST(MatblasTest, UsesMpiCommProfile) {
  EXPECT_EQ(DefaultComm().name, "mpi");
}

}  // namespace
}  // namespace maze::matrix
