#include "rt/metrics.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace maze::rt {
namespace {

std::vector<std::string> Lines(const std::string& s) {
  std::vector<std::string> lines;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(StepTraceCsvTest, HeaderShape) {
  std::string csv = StepTraceCsv({});
  auto lines = Lines(csv);
  ASSERT_EQ(lines.size(), 1u);  // Header only for an empty trace.
  EXPECT_EQ(lines[0],
            "step,compute_seconds,wire_seconds,bytes_sent,messages_sent,"
            "overlapped,fault_seconds");
}

TEST(StepTraceCsvTest, OneRowPerStep) {
  std::vector<StepRecord> steps(5);
  for (int i = 0; i < 5; ++i) steps[static_cast<size_t>(i)].step = i;
  auto lines = Lines(StepTraceCsv(steps));
  ASSERT_EQ(lines.size(), 6u);  // Header + 5 rows.
  for (size_t i = 1; i < lines.size(); ++i) {
    // Every row has the header's 7 columns.
    size_t commas = 0;
    for (char c : lines[i]) commas += c == ',';
    EXPECT_EQ(commas, 6u) << lines[i];
    EXPECT_EQ(lines[i].substr(0, 1), std::to_string(i - 1));
  }
}

TEST(StepTraceCsvTest, OverlappedFlagRendersAsZeroOne) {
  std::vector<StepRecord> steps = {
      {0, 1.0, 0.5, 64, 1, true},
      {1, 2.0, 0.0, 0, 0, false},
  };
  auto lines = Lines(StepTraceCsv(steps));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "0,1,0.5,64,1,1,0");
  EXPECT_EQ(lines[2], "1,2,0,0,0,0,0");
}

TEST(StepTraceCsvTest, FaultSecondsColumnRendersRecoveryStall) {
  StepRecord s{0, 1.0, 0.5, 64, 1, false, 0.25};
  auto lines = Lines(StepTraceCsv({s}));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "0,1,0.5,64,1,0,0.25");
}

TEST(StepRecordTest, StepSecondsIncludesFaultStall) {
  StepRecord s{0, 1.0, 0.5, 0, 0, false, 0.25};
  EXPECT_DOUBLE_EQ(s.StepSeconds(), 1.75);
  s.overlapped = true;
  EXPECT_DOUBLE_EQ(s.StepSeconds(), 1.25);
}

}  // namespace
}  // namespace maze::rt
