#include "rt/metrics.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace maze::rt {
namespace {

std::vector<std::string> Lines(const std::string& s) {
  std::vector<std::string> lines;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(s);
  while (std::getline(in, cell, sep)) cells.push_back(cell);
  // A trailing separator means a final empty cell getline won't surface.
  if (!s.empty() && s.back() == sep) cells.push_back("");
  return cells;
}

TEST(StepTraceCsvTest, HeaderShape) {
  std::string csv = StepTraceCsv({});
  auto lines = Lines(csv);
  ASSERT_EQ(lines.size(), 1u);  // Header only for an empty trace.
  EXPECT_EQ(lines[0],
            "step,compute_seconds,wire_seconds,bytes_sent,messages_sent,"
            "overlapped,fault_seconds,rank_fault_seconds");
}

TEST(StepTraceCsvTest, OneRowPerStep) {
  std::vector<StepRecord> steps(5);
  for (int i = 0; i < 5; ++i) steps[static_cast<size_t>(i)].step = i;
  auto lines = Lines(StepTraceCsv(steps));
  ASSERT_EQ(lines.size(), 6u);  // Header + 5 rows.
  for (size_t i = 1; i < lines.size(); ++i) {
    // Every row has the header's 8 columns.
    size_t commas = 0;
    for (char c : lines[i]) commas += c == ',';
    EXPECT_EQ(commas, 7u) << lines[i];
    EXPECT_EQ(lines[i].substr(0, 1), std::to_string(i - 1));
  }
}

TEST(StepTraceCsvTest, OverlappedFlagRendersAsZeroOne) {
  std::vector<StepRecord> steps = {
      {0, 1.0, 0.5, 64, 1, true},
      {1, 2.0, 0.0, 0, 0, false},
  };
  auto lines = Lines(StepTraceCsv(steps));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "0,1,0.5,64,1,1,0,");
  EXPECT_EQ(lines[2], "1,2,0,0,0,0,0,");
}

TEST(StepTraceCsvTest, FaultSecondsColumnRendersRecoveryStall) {
  StepRecord s{0, 1.0, 0.5, 64, 1, false, 0.25};
  auto lines = Lines(StepTraceCsv({s}));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "0,1,0.5,64,1,0,0.25,");
}

TEST(StepTraceCsvTest, RankFaultSecondsCellJoinsPerRankStalls) {
  StepRecord s{0, 1.0, 0.5, 64, 2, false, 0.25};
  s.rank_fault_seconds = {0.0, 0.25, 0.1};
  auto lines = Lines(StepTraceCsv({s}));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "0,1,0.5,64,2,0,0.25,0;0.25;0.1");
}

// Header-driven parse: locate columns by name instead of position, so the CSV
// contract is "the header names the cells", not "column 7 is fault_seconds".
TEST(StepTraceCsvTest, HeaderDrivenParseRoundTripsRankFaults) {
  StepRecord s{3, 2.0, 1.0, 128, 4, true, 0.5};
  s.rank_fault_seconds = {0.5, 0.0};
  auto lines = Lines(StepTraceCsv({s}));
  ASSERT_EQ(lines.size(), 2u);

  auto header = SplitOn(lines[0], ',');
  auto row = SplitOn(lines[1], ',');
  ASSERT_EQ(header.size(), row.size()) << lines[1];

  int fault_col = -1;
  int rank_fault_col = -1;
  int step_col = -1;
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "fault_seconds") fault_col = static_cast<int>(i);
    if (header[i] == "rank_fault_seconds") rank_fault_col = static_cast<int>(i);
    if (header[i] == "step") step_col = static_cast<int>(i);
  }
  ASSERT_GE(fault_col, 0);
  ASSERT_GE(rank_fault_col, 0);
  ASSERT_GE(step_col, 0);

  EXPECT_EQ(row[static_cast<size_t>(step_col)], "3");
  EXPECT_DOUBLE_EQ(std::stod(row[static_cast<size_t>(fault_col)]), 0.5);
  auto stalls = SplitOn(row[static_cast<size_t>(rank_fault_col)], ';');
  ASSERT_EQ(stalls.size(), 2u);
  EXPECT_DOUBLE_EQ(std::stod(stalls[0]), 0.5);
  EXPECT_DOUBLE_EQ(std::stod(stalls[1]), 0.0);

  // The aggregate must equal the per-rank max — the invariant a header-driven
  // consumer relies on when both cells are present.
  double max_stall = 0;
  for (const std::string& cell : stalls) {
    max_stall = std::max(max_stall, std::stod(cell));
  }
  EXPECT_DOUBLE_EQ(max_stall, std::stod(row[static_cast<size_t>(fault_col)]));
}

TEST(StepRecordTest, StepSecondsIncludesFaultStall) {
  StepRecord s{0, 1.0, 0.5, 0, 0, false, 0.25};
  EXPECT_DOUBLE_EQ(s.StepSeconds(), 1.75);
  s.overlapped = true;
  EXPECT_DOUBLE_EQ(s.StepSeconds(), 1.25);
}

}  // namespace
}  // namespace maze::rt
