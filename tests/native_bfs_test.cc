#include "native/bfs.h"

#include <gtest/gtest.h>

#include "native/reference.h"
#include "tests/test_graphs.h"

namespace maze::native {
namespace {

using testgraphs::SmallRmatUndirected;

Graph UndirectedGraph(int scale = 10, uint64_t seed = 5) {
  return Graph::FromEdges(SmallRmatUndirected(scale, 8, seed),
                          GraphDirections::kOutOnly);
}

TEST(NativeBfsTest, LineGraphDistances) {
  EdgeList el;
  el.num_vertices = 5;
  el.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  el.Symmetrize();
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto result = Bfs(g, rt::BfsOptions{0}, rt::EngineConfig{});
  EXPECT_EQ(result.distance, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(result.levels, 5);
}

TEST(NativeBfsTest, UnreachableVerticesStayInfinite) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 1}, {1, 0}};  // 2 and 3 are isolated.
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto result = Bfs(g, rt::BfsOptions{0}, rt::EngineConfig{});
  EXPECT_EQ(result.distance[1], 1u);
  EXPECT_EQ(result.distance[2], kInfiniteDistance);
  EXPECT_EQ(result.distance[3], kInfiniteDistance);
}

TEST(NativeBfsTest, MatchesReferenceOnRmat) {
  Graph g = UndirectedGraph();
  auto result = Bfs(g, rt::BfsOptions{1}, rt::EngineConfig{});
  EXPECT_EQ(result.distance, ReferenceBfs(g, 1));
}

class NativeBfsRanksTest : public ::testing::TestWithParam<int> {};

TEST_P(NativeBfsRanksTest, RankCountDoesNotChangeDistances) {
  Graph g = UndirectedGraph();
  rt::EngineConfig config;
  config.num_ranks = GetParam();
  auto result = Bfs(g, rt::BfsOptions{3}, config);
  EXPECT_EQ(result.distance, ReferenceBfs(g, 3));
}

INSTANTIATE_TEST_SUITE_P(Ranks, NativeBfsRanksTest, ::testing::Values(1, 2, 4, 8));

TEST(NativeBfsTest, AllOptimizationTogglesPreserveDistances) {
  Graph g = UndirectedGraph(9);
  auto expected = ReferenceBfs(g, 0);
  rt::EngineConfig config;
  config.num_ranks = 4;
  for (bool bitvec : {false, true}) {
    for (bool compress : {false, true}) {
      for (bool overlap : {false, true}) {
        NativeOptions native;
        native.use_bitvector = bitvec;
        native.compress_messages = compress;
        native.overlap_comm = overlap;
        auto result = Bfs(g, rt::BfsOptions{0}, config, native);
        ASSERT_EQ(result.distance, expected)
            << "bitvec=" << bitvec << " compress=" << compress
            << " overlap=" << overlap;
      }
    }
  }
}

TEST(NativeBfsTest, CompressionReducesWireBytes) {
  Graph g = UndirectedGraph(12);
  rt::EngineConfig config;
  config.num_ranks = 4;
  NativeOptions raw = NativeOptions::AllOn();
  raw.compress_messages = false;
  raw.use_bitvector = false;  // Force top-down so remote candidate traffic flows.
  NativeOptions compressed = raw;
  compressed.compress_messages = true;
  auto with = Bfs(g, rt::BfsOptions{0}, config, compressed);
  auto without = Bfs(g, rt::BfsOptions{0}, config, raw);
  EXPECT_LT(with.metrics.bytes_sent, without.metrics.bytes_sent);
  EXPECT_EQ(with.distance, without.distance);
}

TEST(NativeBfsTest, SourceInLastPartition) {
  Graph g = UndirectedGraph();
  rt::EngineConfig config;
  config.num_ranks = 8;
  VertexId source = g.num_vertices() - 1;
  auto result = Bfs(g, rt::BfsOptions{source}, config);
  EXPECT_EQ(result.distance, ReferenceBfs(g, source));
}

TEST(NativeBfsTest, LevelsMatchEccentricity) {
  Graph g = UndirectedGraph();
  auto result = Bfs(g, rt::BfsOptions{0}, rt::EngineConfig{});
  uint32_t max_dist = 0;
  for (uint32_t d : result.distance) {
    if (d != kInfiniteDistance) max_dist = std::max(max_dist, d);
  }
  // `levels` counts frontier expansions: eccentricity + 1 (the final empty
  // expansion ends the loop without counting).
  EXPECT_EQ(result.levels, static_cast<int>(max_dist) + 1);
}

}  // namespace
}  // namespace maze::native
