#include "native/cf.h"

#include <gtest/gtest.h>

#include "tests/test_graphs.h"

namespace maze::native {
namespace {

BipartiteGraph SmallCf() { return testgraphs::SmallRatings().ToGraph(); }

rt::CfOptions BaseOptions(rt::CfMethod method) {
  rt::CfOptions opt;
  opt.method = method;
  opt.k = 8;
  opt.iterations = 5;
  opt.learning_rate = method == rt::CfMethod::kSgd ? 0.01 : 0.002;
  return opt;
}

TEST(NativeCfTest, SgdReducesRmse) {
  BipartiteGraph g = SmallCf();
  auto result = CollaborativeFiltering(g, BaseOptions(rt::CfMethod::kSgd),
                                       rt::EngineConfig{});
  ASSERT_EQ(result.rmse_per_iteration.size(), 5u);
  // Monotone-ish improvement: final clearly better than first.
  EXPECT_LT(result.final_rmse, result.rmse_per_iteration.front());
  EXPECT_LT(result.final_rmse, 1.2);
}

TEST(NativeCfTest, GdReducesRmse) {
  BipartiteGraph g = SmallCf();
  auto result = CollaborativeFiltering(g, BaseOptions(rt::CfMethod::kGd),
                                       rt::EngineConfig{});
  EXPECT_LT(result.final_rmse, result.rmse_per_iteration.front());
}

TEST(NativeCfTest, SgdConvergesFasterThanGdPerIteration) {
  // Section 3.2: "SGD converges in about 40x fewer iterations than GD". At equal
  // (small) iteration counts SGD must reach a far lower RMSE.
  BipartiteGraph g = SmallCf();
  auto sgd = CollaborativeFiltering(g, BaseOptions(rt::CfMethod::kSgd),
                                    rt::EngineConfig{});
  auto gd = CollaborativeFiltering(g, BaseOptions(rt::CfMethod::kGd),
                                   rt::EngineConfig{});
  EXPECT_LT(sgd.final_rmse, gd.final_rmse);
}

TEST(NativeCfTest, FactorsHaveRequestedShape) {
  BipartiteGraph g = SmallCf();
  auto opt = BaseOptions(rt::CfMethod::kSgd);
  auto result = CollaborativeFiltering(g, opt, rt::EngineConfig{});
  EXPECT_EQ(result.user_factors.size(), static_cast<size_t>(g.num_users()) * 8);
  EXPECT_EQ(result.item_factors.size(), static_cast<size_t>(g.num_items()) * 8);
  EXPECT_EQ(result.k, 8);
}

class NativeCfRanksTest : public ::testing::TestWithParam<int> {};

TEST_P(NativeCfRanksTest, MultiRankSgdStillConverges) {
  BipartiteGraph g = SmallCf();
  rt::EngineConfig config;
  config.num_ranks = GetParam();
  auto result = CollaborativeFiltering(g, BaseOptions(rt::CfMethod::kSgd),
                                       config);
  EXPECT_LT(result.final_rmse, result.rmse_per_iteration.front());
  if (GetParam() > 1) EXPECT_GT(result.metrics.bytes_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Ranks, NativeCfRanksTest, ::testing::Values(1, 2, 4));

TEST(NativeCfTest, MultiRankGdMatchesSingleRankExactly) {
  // GD is a deterministic dense update: partitioning must not change the math.
  BipartiteGraph g = SmallCf();
  auto opt = BaseOptions(rt::CfMethod::kGd);
  auto single = CollaborativeFiltering(g, opt, rt::EngineConfig{});
  rt::EngineConfig multi;
  multi.num_ranks = 4;
  auto quad = CollaborativeFiltering(g, opt, multi);
  ASSERT_EQ(single.user_factors.size(), quad.user_factors.size());
  for (size_t i = 0; i < single.user_factors.size(); ++i) {
    ASSERT_NEAR(single.user_factors[i], quad.user_factors[i], 1e-12);
  }
  EXPECT_NEAR(single.final_rmse, quad.final_rmse, 1e-12);
}

TEST(NativeCfTest, InitFactorsDeterministicAndBounded) {
  std::vector<double> a;
  std::vector<double> b;
  CfInitFactors(100, 4, 7, &a);
  CfInitFactors(100, 4, 7, &b);
  EXPECT_EQ(a, b);
  for (double v : a) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 0.5);
  }
  std::vector<double> c;
  CfInitFactors(100, 4, 8, &c);
  EXPECT_NE(a, c);
}

TEST(NativeCfTest, RmseOfPerfectFactorsIsZero) {
  // Rank-1 structure: rating(u, v) = 1.0 and all-one factors with k=1.
  std::vector<Rating> ratings;
  for (VertexId u = 0; u < 10; ++u) {
    for (VertexId v = 0; v < 5; ++v) ratings.push_back({u, v, 1.0f});
  }
  BipartiteGraph g = BipartiteGraph::FromRatings(10, 5, ratings);
  std::vector<double> pu(10, 1.0);
  std::vector<double> qv(5, 1.0);
  EXPECT_NEAR(CfRmse(g, pu, qv, 1), 0.0, 1e-12);
}

}  // namespace
}  // namespace maze::native
