// MAZE_NATIVE_OPT differential tests (DESIGN.md §4f): the cache-blocked /
// branch-lean kernels must produce BIT-IDENTICAL results to the plain loops —
// same FP addition sequence, not merely close — across graph shapes, rank
// counts, and window sizes, including shapes that stress the blocking plan
// (empty graphs, dangling vertices, isolated vertices, skewed hubs).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/graph.h"
#include "matrix/algorithms.h"
#include "native/blocked_gather.h"
#include "native/options.h"
#include "native/pagerank.h"
#include "tests/test_graphs.h"

namespace maze {
namespace {

// Restores the env-driven default no matter how a test exits.
class NativeOptTest : public ::testing::Test {
 protected:
  void TearDown() override { native::SetNativeOptForTesting(-1); }
};

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

rt::PageRankResult NativePr(const Graph& g, int opt, int ranks,
                            int iterations = 5) {
  native::SetNativeOptForTesting(opt);
  rt::PageRankOptions options;
  options.iterations = iterations;
  rt::EngineConfig config;
  config.num_ranks = ranks;
  return native::PageRank(g, options, config, native::NativeOptions::AllOn());
}

rt::PageRankResult MatrixPr(const EdgeList& el, int opt, int ranks,
                            int iterations = 5) {
  native::SetNativeOptForTesting(opt);
  rt::PageRankOptions options;
  options.iterations = iterations;
  rt::EngineConfig config;
  config.num_ranks = ranks;
  config.comm = matrix::DefaultComm();
  return matrix::PageRank(el, options, config);
}

std::vector<EdgeList> Shapes() {
  std::vector<EdgeList> shapes;
  // Empty graph (vertices, no edges — every vertex dangling).
  EdgeList empty;
  empty.num_vertices = 64;
  shapes.push_back(empty);
  // Single edge amid isolated vertices.
  EdgeList sparse;
  sparse.num_vertices = 50;
  sparse.edges = {{3, 47}};
  shapes.push_back(sparse);
  // Star: one hub fans out to (and receives from) everyone — a single row
  // spanning every source window.
  EdgeList star;
  star.num_vertices = 40;
  for (VertexId v = 1; v < 40; ++v) {
    star.edges.push_back({0, v});
    star.edges.push_back({v, 0});
  }
  shapes.push_back(star);
  // Chain with a dangling tail (last vertex has no out-edges).
  EdgeList chain;
  chain.num_vertices = 33;
  for (VertexId v = 0; v + 1 < 33; ++v) chain.edges.push_back({v, v + 1});
  shapes.push_back(chain);
  shapes.push_back(testgraphs::Figure2());
  shapes.push_back(testgraphs::SmallRmat(9));
  return shapes;
}

TEST_F(NativeOptTest, PageRankBitIdenticalAcrossShapesAndRanks) {
  for (const EdgeList& el : Shapes()) {
    Graph g = Graph::FromEdges(el, GraphDirections::kBoth);
    for (int ranks : {1, 2, 4}) {
      auto base = NativePr(g, 0, ranks);
      auto fast = NativePr(g, 1, ranks);
      EXPECT_TRUE(BitIdentical(base.ranks, fast.ranks))
          << el.num_vertices << " vertices, " << el.edges.size() << " edges, "
          << ranks << " ranks";
      EXPECT_EQ(base.metrics.bytes_sent, fast.metrics.bytes_sent);
      EXPECT_EQ(base.metrics.messages_sent, fast.metrics.messages_sent);
    }
  }
}

TEST_F(NativeOptTest, PageRankBitIdenticalWhenBlockingIsForced) {
  // A tiny window forces multi-block plans even on small graphs, exercising
  // the blocked accumulate + finalize path rather than the flat opt loop.
  ASSERT_EQ(setenv("MAZE_HOTPATH_WINDOW", "8", 1), 0);
  for (const EdgeList& el : Shapes()) {
    Graph g = Graph::FromEdges(el, GraphDirections::kBoth);
    auto base = NativePr(g, 0, 2);
    auto fast = NativePr(g, 1, 2);
    EXPECT_TRUE(BitIdentical(base.ranks, fast.ranks))
        << el.num_vertices << " vertices, " << el.edges.size() << " edges";
  }
  unsetenv("MAZE_HOTPATH_WINDOW");
}

TEST_F(NativeOptTest, MatrixSpmvBitIdenticalAcrossShapesAndRanks) {
  for (const EdgeList& el : Shapes()) {
    for (int ranks : {1, 4}) {
      auto base = MatrixPr(el, 0, ranks);
      auto fast = MatrixPr(el, 1, ranks);
      EXPECT_TRUE(BitIdentical(base.ranks, fast.ranks))
          << el.num_vertices << " vertices, " << el.edges.size() << " edges, "
          << ranks << " ranks";
      EXPECT_EQ(base.metrics.bytes_sent, fast.metrics.bytes_sent);
    }
  }
}

TEST_F(NativeOptTest, MatrixSpmvBitIdenticalWhenBlockingIsForced) {
  ASSERT_EQ(setenv("MAZE_HOTPATH_WINDOW", "8", 1), 0);
  for (const EdgeList& el : Shapes()) {
    auto base = MatrixPr(el, 0, 4);
    auto fast = MatrixPr(el, 1, 4);
    EXPECT_TRUE(BitIdentical(base.ranks, fast.ranks))
        << el.num_vertices << " vertices, " << el.edges.size() << " edges";
  }
  unsetenv("MAZE_HOTPATH_WINDOW");
}

TEST_F(NativeOptTest, ToggleDefaultsOffAndForcesBothWays) {
  unsetenv("MAZE_NATIVE_OPT");
  native::SetNativeOptForTesting(-1);
  EXPECT_FALSE(native::NativeOptEnabled());
  native::SetNativeOptForTesting(1);
  EXPECT_TRUE(native::NativeOptEnabled());
  native::SetNativeOptForTesting(0);
  EXPECT_FALSE(native::NativeOptEnabled());
  native::SetNativeOptForTesting(-1);
  ASSERT_EQ(setenv("MAZE_NATIVE_OPT", "1", 1), 0);
  EXPECT_TRUE(native::NativeOptEnabled());
  ASSERT_EQ(setenv("MAZE_NATIVE_OPT", "0", 1), 0);
  EXPECT_FALSE(native::NativeOptEnabled());
  unsetenv("MAZE_NATIVE_OPT");
}

// --- GatherBlocks schedule invariants ----------------------------------------

TEST(GatherBlocksTest, CoversEveryEdgeExactlyOnceInSortedOrder) {
  Graph g = Graph::FromEdges(testgraphs::SmallRmat(8), GraphDirections::kBoth);
  const VertexId n = g.num_vertices();
  auto gb = native::GatherBlocks::Build(g.in_offsets().data(),
                                        g.in_targets().data(), 0, n, 0, n,
                                        /*window=*/64);
  ASSERT_TRUE(gb.active());
  // Per row, concatenating its segments in window order must reproduce the
  // row's full edge range in order; rows must be distinct within a window.
  std::vector<EdgeId> cursor(n);
  for (VertexId v = 0; v < n; ++v) cursor[v] = g.in_offsets()[v];
  for (int b = 0; b < gb.num_blocks; ++b) {
    std::vector<bool> seen(n, false);
    for (size_t s = gb.seg_off[b]; s < gb.seg_off[b + 1]; ++s) {
      VertexId row = gb.seg_row[s];
      ASSERT_FALSE(seen[row]) << "row repeated within window " << b;
      seen[row] = true;
      ASSERT_EQ(gb.seg_begin[s], cursor[row]);
      ASSERT_LT(gb.seg_begin[s], gb.seg_end[s]);
      for (EdgeId e = gb.seg_begin[s]; e < gb.seg_end[s]; ++e) {
        ASSERT_EQ(static_cast<size_t>(g.in_targets()[e] / 64),
                  static_cast<size_t>(b));
      }
      cursor[row] = gb.seg_end[s];
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_EQ(cursor[v], g.in_offsets()[v + 1]) << "row " << v << " not drained";
  }
}

TEST(GatherBlocksTest, SingleWindowIsInactive) {
  Graph g = Graph::FromEdges(testgraphs::Figure2(), GraphDirections::kBoth);
  auto gb = native::GatherBlocks::Build(g.in_offsets().data(),
                                        g.in_targets().data(), 0,
                                        g.num_vertices(), 0, g.num_vertices(),
                                        /*window=*/1 << 20);
  EXPECT_FALSE(gb.active());
  EXPECT_EQ(gb.num_blocks, 1);
}

TEST(GatherBlocksTest, WindowSizingHasFloorAndOverride) {
  size_t w = native::GatherWindowVertices(sizeof(double));
  EXPECT_GE(w, 4096u);
  ASSERT_EQ(setenv("MAZE_HOTPATH_WINDOW", "12345", 1), 0);
  EXPECT_EQ(native::GatherWindowVertices(sizeof(double)), 12345u);
  unsetenv("MAZE_HOTPATH_WINDOW");
}

}  // namespace
}  // namespace maze
