#include "native/pagerank.h"

#include <gtest/gtest.h>

#include "native/reference.h"
#include "tests/test_graphs.h"

namespace maze::native {
namespace {

using testgraphs::Figure2;
using testgraphs::SmallRmat;

void ExpectRanksNear(const std::vector<double>& got,
                     const std::vector<double>& want, double tol) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol) << "vertex " << i;
  }
}

TEST(NativePageRankTest, Figure2HandComputedFirstIteration) {
  Graph g = Graph::FromEdges(Figure2());
  rt::PageRankOptions opt;
  opt.iterations = 1;
  opt.jump = 0.3;
  auto result = PageRank(g, opt, rt::EngineConfig{});
  // All PR start at 1.0. contrib: v0: 1/2, v1: 1/2, v2: 1, v3: 0 (deg 0).
  // PR(0) = 0.3; PR(1) = 0.3 + 0.7*0.5 = 0.65;
  // PR(2) = 0.3 + 0.7*(0.5+0.5) = 1.0; PR(3) = 0.3 + 0.7*(0.5+1.0) = 1.35.
  ASSERT_EQ(result.ranks.size(), 4u);
  EXPECT_NEAR(result.ranks[0], 0.3, 1e-12);
  EXPECT_NEAR(result.ranks[1], 0.65, 1e-12);
  EXPECT_NEAR(result.ranks[2], 1.0, 1e-12);
  EXPECT_NEAR(result.ranks[3], 1.35, 1e-12);
}

TEST(NativePageRankTest, MatchesReferenceOnRmat) {
  Graph g = Graph::FromEdges(SmallRmat());
  rt::PageRankOptions opt;
  opt.iterations = 5;
  auto result = PageRank(g, opt, rt::EngineConfig{});
  auto expected = ReferencePageRank(g, 5, opt.jump);
  ExpectRanksNear(result.ranks, expected, 1e-9);
}

// Multi-rank runs must be numerically identical to single rank: partitioning
// cannot change the math.
class NativePageRankRanksTest : public ::testing::TestWithParam<int> {};

TEST_P(NativePageRankRanksTest, RankCountDoesNotChangeResult) {
  Graph g = Graph::FromEdges(SmallRmat());
  rt::PageRankOptions opt;
  opt.iterations = 4;
  rt::EngineConfig config;
  config.num_ranks = GetParam();
  auto result = PageRank(g, opt, config);
  auto expected = ReferencePageRank(g, 4, opt.jump);
  ExpectRanksNear(result.ranks, expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ranks, NativePageRankRanksTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(NativePageRankTest, OptimizationTogglesPreserveResults) {
  Graph g = Graph::FromEdges(SmallRmat());
  rt::PageRankOptions opt;
  opt.iterations = 3;
  rt::EngineConfig config;
  config.num_ranks = 4;
  auto expected = ReferencePageRank(g, 3, opt.jump);
  for (bool prefetch : {false, true}) {
    for (bool compress : {false, true}) {
      for (bool overlap : {false, true}) {
        NativeOptions native;
        native.software_prefetch = prefetch;
        native.compress_messages = compress;
        native.overlap_comm = overlap;
        auto result = PageRank(g, opt, config, native);
        ExpectRanksNear(result.ranks, expected, 1e-9);
      }
    }
  }
}

TEST(NativePageRankTest, CompressionReducesWireBytes) {
  Graph g = Graph::FromEdges(SmallRmat(11, 8));
  rt::PageRankOptions opt;
  opt.iterations = 8;
  rt::EngineConfig config;
  config.num_ranks = 4;
  NativeOptions compressed = NativeOptions::AllOn();
  NativeOptions raw = NativeOptions::AllOn();
  raw.compress_messages = false;
  auto with = PageRank(g, opt, config, compressed);
  auto without = PageRank(g, opt, config, raw);
  EXPECT_LT(with.metrics.bytes_sent, without.metrics.bytes_sent);
}

TEST(NativePageRankTest, MultiRankSendsBytes) {
  Graph g = Graph::FromEdges(SmallRmat());
  rt::PageRankOptions opt;
  opt.iterations = 2;
  rt::EngineConfig config;
  config.num_ranks = 4;
  auto result = PageRank(g, opt, config);
  EXPECT_GT(result.metrics.bytes_sent, 0u);
  EXPECT_GT(result.metrics.elapsed_seconds, 0.0);
  EXPECT_GT(result.metrics.memory_peak_bytes, 0u);

  auto single = PageRank(g, opt, rt::EngineConfig{});
  EXPECT_EQ(single.metrics.bytes_sent, 0u);
}

TEST(NativePageRankTest, DanglingVerticesContributeNothing) {
  // Vertex 1 has no out-edges; its rank must not be redistributed.
  EdgeList el;
  el.num_vertices = 2;
  el.edges = {{0, 1}};
  Graph g = Graph::FromEdges(el);
  rt::PageRankOptions opt;
  opt.iterations = 2;
  auto result = PageRank(g, opt, rt::EngineConfig{});
  EXPECT_NEAR(result.ranks[0], 0.3, 1e-12);
  // PR(1) after iter2 = 0.3 + 0.7 * (PR(0)=0.3)/1 = 0.51.
  EXPECT_NEAR(result.ranks[1], 0.51, 1e-12);
}

TEST(NativePageRankTest, BytesPerIterationFormula) {
  EXPECT_DOUBLE_EQ(PageRankBytesPerIteration(10, 100), 100 * 12.0 + 10 * 24.0);
}

TEST(NativePageRankTest, EarlyConvergenceDetection) {
  Graph g = Graph::FromEdges(SmallRmat(8, 4));
  rt::PageRankOptions opt;
  opt.iterations = 200;
  opt.tolerance = 1e-8;
  auto result = PageRank(g, opt, rt::EngineConfig{});
  // Converges far before the iteration cap...
  EXPECT_LT(result.iterations, 200);
  EXPECT_GT(result.iterations, 1);
  // ...to the same answer a long fixed run reaches.
  rt::PageRankOptions fixed;
  fixed.iterations = 200;
  auto reference = PageRank(g, fixed, rt::EngineConfig{});
  for (size_t v = 0; v < reference.ranks.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], reference.ranks[v], 1e-6);
  }
}

TEST(NativePageRankTest, ZeroToleranceRunsAllIterations) {
  Graph g = Graph::FromEdges(SmallRmat(8, 4));
  rt::PageRankOptions opt;
  opt.iterations = 7;
  auto result = PageRank(g, opt, rt::EngineConfig{});
  EXPECT_EQ(result.iterations, 7);
}

}  // namespace
}  // namespace maze::native
