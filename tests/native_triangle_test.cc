#include "native/triangle.h"

#include <gtest/gtest.h>

#include "native/reference.h"
#include "tests/test_graphs.h"

namespace maze::native {
namespace {

using testgraphs::SmallRmatOriented;

TEST(NativeTriangleTest, SingleTriangle) {
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {{0, 1}, {1, 2}, {0, 2}};  // Already oriented small -> large.
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto result = TriangleCount(g, {}, rt::EngineConfig{});
  EXPECT_EQ(result.triangles, 1u);
}

TEST(NativeTriangleTest, CompleteGraphK5) {
  // K5 has C(5,3) = 10 triangles.
  EdgeList el;
  el.num_vertices = 5;
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) el.edges.push_back({i, j});
  }
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto result = TriangleCount(g, {}, rt::EngineConfig{});
  EXPECT_EQ(result.triangles, 10u);
}

TEST(NativeTriangleTest, TriangleFreeGraph) {
  // Bipartite graphs are triangle-free.
  EdgeList el;
  el.num_vertices = 10;
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = 5; j < 10; ++j) el.edges.push_back({i, j});
  }
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto result = TriangleCount(g, {}, rt::EngineConfig{});
  EXPECT_EQ(result.triangles, 0u);
}

TEST(NativeTriangleTest, MatchesReferenceOnRmat) {
  Graph g = Graph::FromEdges(SmallRmatOriented(), GraphDirections::kOutOnly);
  auto result = TriangleCount(g, {}, rt::EngineConfig{});
  EXPECT_EQ(result.triangles, ReferenceTriangleCount(g));
}

TEST(NativeTriangleTest, OrientationMatchesBruteForceOnUndirected) {
  // End-to-end check of the §4.1.2 preprocessing: orient, count, compare with a
  // brute-force enumeration over the symmetric graph.
  EdgeList undirected = testgraphs::SmallRmat(8, 4);
  undirected.Symmetrize();
  Graph sym = Graph::FromEdges(undirected, GraphDirections::kOutOnly);
  uint64_t expected = BruteForceTriangleCount(sym);

  EdgeList oriented = testgraphs::SmallRmat(8, 4);
  oriented.OrientBySmallerId();
  Graph g = Graph::FromEdges(oriented, GraphDirections::kOutOnly);
  auto result = TriangleCount(g, {}, rt::EngineConfig{});
  EXPECT_EQ(result.triangles, expected);
}

class NativeTriangleRanksTest : public ::testing::TestWithParam<int> {};

TEST_P(NativeTriangleRanksTest, RankCountDoesNotChangeCount) {
  Graph g = Graph::FromEdges(SmallRmatOriented(), GraphDirections::kOutOnly);
  uint64_t expected = ReferenceTriangleCount(g);
  rt::EngineConfig config;
  config.num_ranks = GetParam();
  auto result = TriangleCount(g, {}, config);
  EXPECT_EQ(result.triangles, expected);
  if (GetParam() > 1) EXPECT_GT(result.metrics.bytes_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Ranks, NativeTriangleRanksTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(NativeTriangleTest, BitvectorToggleSameCount) {
  Graph g = Graph::FromEdges(SmallRmatOriented(11, 12), GraphDirections::kOutOnly);
  NativeOptions with_bv = NativeOptions::AllOn();
  NativeOptions without_bv = NativeOptions::AllOn();
  without_bv.use_bitvector = false;
  auto a = TriangleCount(g, {}, rt::EngineConfig{}, with_bv);
  auto b = TriangleCount(g, {}, rt::EngineConfig{}, without_bv);
  EXPECT_EQ(a.triangles, b.triangles);
}

TEST(NativeTriangleTest, OverlapShrinksMemoryFootprint) {
  Graph g = Graph::FromEdges(SmallRmatOriented(11, 12), GraphDirections::kOutOnly);
  rt::EngineConfig config;
  config.num_ranks = 4;
  NativeOptions overlap = NativeOptions::AllOn();
  NativeOptions buffered = NativeOptions::AllOn();
  buffered.overlap_comm = false;
  auto a = TriangleCount(g, {}, config, overlap);
  auto b = TriangleCount(g, {}, config, buffered);
  EXPECT_LT(a.metrics.memory_peak_bytes, b.metrics.memory_peak_bytes);
  EXPECT_EQ(a.triangles, b.triangles);
}

TEST(NativeTriangleTest, CompressionReducesAdjacencyTraffic) {
  Graph g = Graph::FromEdges(SmallRmatOriented(11, 12), GraphDirections::kOutOnly);
  rt::EngineConfig config;
  config.num_ranks = 4;
  NativeOptions raw = NativeOptions::AllOn();
  raw.compress_messages = false;
  auto with = TriangleCount(g, {}, config, NativeOptions::AllOn());
  auto without = TriangleCount(g, {}, config, raw);
  EXPECT_LT(with.metrics.bytes_sent, without.metrics.bytes_sent);
}

}  // namespace
}  // namespace maze::native
