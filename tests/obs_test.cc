#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/counters.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "tests/json_checker.h"
#include "util/thread_pool.h"

namespace maze::obs {
namespace {

using testutil::CountOccurrences;
using testutil::JsonChecker;

// Each TEST runs in its own process (gtest_discover_tests), but tests within
// one suite share the process-global registries; reset defensively.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    ResetAll();
  }
  void TearDown() override {
    SetEnabled(false);
    ResetAll();
  }
};

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  {
    MAZE_OBS_SPAN("idle", "test", 0, 0);
  }
  EmitSpanEndingNow("idle2", "test", 0, 0, 0.001);
  EXPECT_TRUE(SnapshotEvents().empty());
}

TEST_F(ObsTest, SpanRoundTrip) {
  SetEnabled(true);
  {
    MAZE_OBS_SPAN("work", "test", 3, 7);
  }
  EmitSpanEndingNow("late", "test", 1, 2, 0.0005);
  SetEnabled(false);
  auto events = SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  bool saw_work = false;
  bool saw_late = false;
  for (const Event& e : events) {
    if (std::string(e.name) == "work") {
      saw_work = true;
      EXPECT_EQ(e.rank, 3);
      EXPECT_EQ(e.step, 7);
      EXPECT_GE(e.dur_us, 0.0);
    }
    if (std::string(e.name) == "late") {
      saw_late = true;
      EXPECT_EQ(e.rank, 1);
      EXPECT_NEAR(e.dur_us, 500.0, 1.0);
    }
  }
  EXPECT_TRUE(saw_work);
  EXPECT_TRUE(saw_late);
}

TEST_F(ObsTest, CounterAtomicUnderContention) {
  Counter& c = GetCounter("test.contended");
  constexpr uint64_t kPerSlot = 1000;
  constexpr uint64_t kSlots = 64;
  ParallelFor(kSlots, 1, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t s = lo; s < hi; ++s) {
      for (uint64_t i = 0; i < kPerSlot; ++i) c.Add(1);
    }
  });
  EXPECT_EQ(c.value(), kSlots * kPerSlot);
}

TEST_F(ObsTest, HistogramExactBelowEight) {
  // Values below 8 land in exact unit buckets: recorded == reported.
  Histogram& h = GetHistogram("test.small");
  for (uint64_t v = 0; v < 8; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.Percentile(1), 0u);
  EXPECT_EQ(h.Percentile(100), 7u);
  EXPECT_EQ(h.max(), 7u);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  // Log-linear buckets with 8 sub-buckets per power of two: 1000 and 1023
  // share the [960, 1023] bucket, whose inclusive upper bound is 1023; 1024
  // starts the next power's first bucket [1024, 1151].
  EXPECT_EQ(Histogram::BucketIndex(1000), Histogram::BucketIndex(1023));
  EXPECT_NE(Histogram::BucketIndex(1023), Histogram::BucketIndex(1024));
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketIndex(1023)), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketIndex(1024)), 1151u);

  // Relative error of the reported bound stays under 12.5% (1/8).
  for (uint64_t v : {9u, 100u, 1000u, 65537u, 1000000u}) {
    uint64_t bound = Histogram::BucketUpperBound(Histogram::BucketIndex(v));
    EXPECT_GE(bound, v);
    EXPECT_LE(static_cast<double>(bound - v), 0.125 * static_cast<double>(v));
  }
}

TEST_F(ObsTest, HistogramPercentilesNearestRank) {
  Histogram& h = GetHistogram("test.pct");
  // 100 samples of 10, one of 1000: p50/p95 report 10's bucket bound, p99 is
  // still in the bulk, p100 (max) catches the outlier's bucket.
  for (int i = 0; i < 100; ++i) h.Record(10);
  h.Record(1000);
  EXPECT_EQ(h.P50(), 10u);
  EXPECT_EQ(h.P95(), 10u);
  EXPECT_EQ(h.P99(), 10u);
  EXPECT_EQ(h.Percentile(100), 1023u);  // Bucket bound covering 1000.
  EXPECT_EQ(h.max(), 1000u);            // Exact max tracked separately.
}

TEST_F(ObsTest, HistogramConcurrentRecords) {
  Histogram& h = GetHistogram("test.mt");
  constexpr uint64_t kRecords = 20000;
  ParallelFor(kRecords, 64, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) h.Record(i % 128);
  });
  EXPECT_EQ(h.count(), kRecords);
}

// --- Chrome trace JSON shape ---------------------------------------------------

TEST_F(ObsTest, ChromeTraceJsonIsValidWithBalancedAsyncEvents) {
  SetEnabled(true);
  EmitSpanEndingNow("compute", "native", 0, 0, 0.001);
  EmitSpanEndingNow("compute", "native", 1, 0, 0.002);
  PushWireSpan("wire", 0, 0, /*sim_ts_us=*/100.0, /*sim_dur_us=*/50.0,
               /*bytes=*/4096, /*msgs=*/2);
  PushWireSpan("wire", 1, 1, /*sim_ts_us=*/200.0, /*sim_dur_us=*/75.0,
               /*bytes=*/8192, /*msgs=*/3);
  GetCounter("test.bytes").Add(4096);
  GetHistogram("test.sizes").Record(512);
  SetEnabled(false);

  std::string json = ChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);

  // Every async begin has a matching end (same count; the exporter writes the
  // pair from a single wire record, so ids always match up).
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"b\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"e\""), 2u);
  // Complete spans and process-name metadata are present.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_GE(CountOccurrences(json, "process_name"), 2u);
  // Wire spans render on the synthetic simulated-rank pids.
  EXPECT_NE(json.find("\"pid\":10000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":10001"), std::string::npos);
  // Counters and histograms ride along in otherData.
  EXPECT_NE(json.find("test.bytes"), std::string::npos);
  EXPECT_NE(json.find("test.sizes"), std::string::npos);
}

TEST_F(ObsTest, SummaryTextListsSpansCountersHistograms) {
  SetEnabled(true);
  EmitSpanEndingNow("gather", "native", 0, 0, 0.002);
  GetCounter("wire.bytes[0->1]").Add(1024);
  GetHistogram("exchange.batch_records").Record(33);
  SetEnabled(false);
  std::string text = SummaryText();
  EXPECT_NE(text.find("gather"), std::string::npos);
  EXPECT_NE(text.find("wire.bytes[0->1]"), std::string::npos);
  EXPECT_NE(text.find("exchange.batch_records"), std::string::npos);
}

// --- JSON escaping ------------------------------------------------------------

TEST_F(ObsTest, JsonEscapeHandlesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape("\b\f"), "\\b\\f");
  EXPECT_EQ(JsonEscape(std::string("\x01\x1f")), "\\u0001\\u001f");
  // Bytes >= 0x80 (UTF-8 continuation) pass through untouched; no
  // sign-extension garbage like ￿ffc3.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST_F(ObsTest, ChromeTraceJsonEscapesHostileNames) {
  // Regression: counter/histogram names with quotes, backslashes, and control
  // bytes used to break the exported JSON.
  SetEnabled(true);
  EmitSpanEndingNow("evil\"span\\name", "cat\negory", 0, 0, 0.001);
  GetCounter("bytes\"quoted\"[0->1]").Add(7);
  GetHistogram("hist\\back\nslash").Record(42);
  SetEnabled(false);
  std::string json = ChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("evil\\\"span\\\\name"), std::string::npos);
  std::string summary = SummaryText();
  EXPECT_NE(summary.find("bytes\"quoted\"[0->1]"), std::string::npos);
}

// --- Histogram percentile accuracy ---------------------------------------------

// Exact nearest-rank percentile of a sorted sample.
uint64_t ExactPercentile(std::vector<uint64_t> sorted, double pct) {
  std::sort(sorted.begin(), sorted.end());
  size_t rank = static_cast<size_t>(std::ceil(pct / 100.0 * sorted.size()));
  if (rank == 0) rank = 1;
  return sorted[std::min(rank, sorted.size()) - 1];
}

TEST_F(ObsTest, HistogramPercentilesWithinBucketErrorBound) {
  // Log-linear buckets (8 sub-buckets per power of two) guarantee the reported
  // percentile never undershoots the exact nearest-rank value and overshoots
  // by at most 12.5%. Check on distributions with different shapes.
  struct Case {
    const char* name;
    std::vector<uint64_t> values;
  };
  std::vector<Case> cases;
  {
    Case uniform{"uniform", {}};
    for (uint64_t i = 1; i <= 1000; ++i) uniform.values.push_back(i);
    cases.push_back(std::move(uniform));
    Case geometric{"geometric", {}};
    for (uint64_t i = 0; i < 1000; ++i) {
      geometric.values.push_back(1ull << (i % 20));
    }
    cases.push_back(std::move(geometric));
    Case heavy_tail{"heavy_tail", {}};
    for (uint64_t i = 0; i < 990; ++i) heavy_tail.values.push_back(100);
    for (uint64_t i = 0; i < 10; ++i) heavy_tail.values.push_back(1000000);
    cases.push_back(std::move(heavy_tail));
  }
  for (const Case& c : cases) {
    Histogram& h = GetHistogram(std::string("test.acc.") + c.name);
    for (uint64_t v : c.values) h.Record(v);
    for (double pct : {50.0, 99.0}) {
      uint64_t exact = ExactPercentile(c.values, pct);
      uint64_t approx = pct == 50.0 ? h.P50() : h.P99();
      EXPECT_GE(approx, exact) << c.name << " p" << pct;
      EXPECT_LE(static_cast<double>(approx),
                std::ceil(1.125 * static_cast<double>(exact)))
          << c.name << " p" << pct;
    }
  }
}

TEST_F(ObsTest, ResetAllClearsEverything) {
  SetEnabled(true);
  EmitSpanEndingNow("x", "t", 0, 0, 0.001);
  GetCounter("test.c").Add(5);
  GetHistogram("test.h").Record(5);
  SetEnabled(false);
  ResetAll();
  EXPECT_TRUE(SnapshotEvents().empty());
  EXPECT_EQ(GetCounter("test.c").value(), 0u);
  EXPECT_EQ(GetHistogram("test.h").count(), 0u);
}

}  // namespace
}  // namespace maze::obs
