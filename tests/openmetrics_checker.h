// A minimal OpenMetrics text-exposition validator shared by the telemetry,
// CLI, and bench_telemetry checks — enough to prove a /metrics scrape is
// well-formed without a Prometheus client dependency (the sibling of
// json_checker.h). Validates, line by line:
//
//   * `# EOF` terminator, exactly once, as the final line
//   * `# TYPE name counter|histogram|gauge` before any sample of the family
//   * `# HELP name text` with valid escaping (\\, \", \n only)
//   * metric-name charset [a-zA-Z0-9_:], label-name charset, quoted and
//     escaped label values
//   * counter families expose exactly `name_total` with a non-negative value
//   * gauge families expose exactly the bare `name` sample (the only family
//     kind allowed a negative value; gauges are exempt from monotonicity)
//   * histogram families expose `_bucket{le="..."}` with strictly ascending
//     le, non-decreasing cumulative counts, a `+Inf` bucket equal to
//     `_count`, and a `_sum`
//   * exemplars (` # {labels} value`) only on bucket lines
//
// CheckMonotonic(prev, cur) proves between-scrape monotonicity: every counter
// and histogram count/sum present in both expositions must not decrease.
#ifndef MAZE_TESTS_OPENMETRICS_CHECKER_H_
#define MAZE_TESTS_OPENMETRICS_CHECKER_H_

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace maze::testutil {

class OpenMetricsChecker {
 public:
  struct Histogram {
    std::vector<std::pair<double, uint64_t>> buckets;  // (le, cumulative).
    bool has_inf = false;
    uint64_t inf_count = 0;
    bool has_count = false;
    uint64_t count = 0;
    bool has_sum = false;
    uint64_t sum = 0;
  };

  explicit OpenMetricsChecker(const std::string& text) { Parse(text); }

  bool Valid() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  // Parsed `name_total` samples, keyed by family name (with the `maze_`
  // prefix, e.g. "maze_serve_submitted") — the reconciliation surface.
  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  // Parsed bare gauge samples, keyed by family name ("maze_serve_inflight").
  const std::map<std::string, int64_t>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  // Between-scrape monotonicity: counters and histogram count/sum shared by
  // both expositions must not decrease from prev to cur.
  static bool CheckMonotonic(const OpenMetricsChecker& prev,
                             const OpenMetricsChecker& cur,
                             std::string* error = nullptr) {
    auto fail = [&](const std::string& message) {
      if (error != nullptr) *error = message;
      return false;
    };
    for (const auto& [name, value] : prev.counters_) {
      auto it = cur.counters_.find(name);
      if (it == cur.counters_.end()) {
        return fail("counter " + name + " disappeared");
      }
      if (it->second < value) {
        return fail("counter " + name + " decreased: " +
                    std::to_string(value) + " -> " +
                    std::to_string(it->second));
      }
    }
    for (const auto& [name, hist] : prev.histograms_) {
      auto it = cur.histograms_.find(name);
      if (it == cur.histograms_.end()) {
        return fail("histogram " + name + " disappeared");
      }
      if (it->second.count < hist.count) {
        return fail("histogram " + name + " count decreased");
      }
      if (it->second.sum < hist.sum) {
        return fail("histogram " + name + " sum decreased");
      }
    }
    return true;
  }

 private:
  static bool NameChar(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == ':';
  }

  static bool ValidName(const std::string& name) {
    if (name.empty()) return false;
    for (char c : name) {
      if (!NameChar(c)) return false;
    }
    return true;
  }

  // Escaped text: a backslash may only introduce \\, \", or \n.
  static bool ValidEscaping(const std::string& text) {
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] != '\\') continue;
      if (i + 1 >= text.size()) return false;
      char next = text[i + 1];
      if (next != '\\' && next != '"' && next != 'n') return false;
      ++i;
    }
    return true;
  }

  void Fail(int line_no, const std::string& message) {
    if (error_.empty()) {
      error_ = "line " + std::to_string(line_no) + ": " + message;
    }
  }

  // Parses `{key="value",...}` starting at `pos` (which must point at '{');
  // advances pos past the closing '}'. Stores le= into *le_out when present.
  bool ParseLabels(const std::string& line, size_t& pos, int line_no,
                   std::string* le_out) {
    ++pos;  // '{'
    if (pos < line.size() && line[pos] == '}') {
      ++pos;
      return true;
    }
    while (pos < line.size()) {
      size_t eq = line.find('=', pos);
      if (eq == std::string::npos) {
        Fail(line_no, "label without '='");
        return false;
      }
      std::string key = line.substr(pos, eq - pos);
      if (!ValidName(key) || (key[0] >= '0' && key[0] <= '9')) {
        Fail(line_no, "bad label name '" + key + "'");
        return false;
      }
      pos = eq + 1;
      if (pos >= line.size() || line[pos] != '"') {
        Fail(line_no, "label value must be quoted");
        return false;
      }
      ++pos;
      std::string value;
      while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\') {
          if (pos + 1 >= line.size()) break;
          value += line[pos];
          value += line[pos + 1];
          pos += 2;
          continue;
        }
        value += line[pos];
        ++pos;
      }
      if (pos >= line.size()) {
        Fail(line_no, "unterminated label value");
        return false;
      }
      if (!ValidEscaping(value)) {
        Fail(line_no, "bad escape in label value");
        return false;
      }
      ++pos;  // closing '"'
      if (key == "le" && le_out != nullptr) *le_out = value;
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < line.size() && line[pos] == '}') {
        ++pos;
        return true;
      }
      Fail(line_no, "expected ',' or '}' after label");
      return false;
    }
    Fail(line_no, "unterminated label set");
    return false;
  }

  bool ParseValue(const std::string& text, int line_no, double* out,
                  bool allow_negative = false) {
    if (text == "+Inf") {
      *out = std::numeric_limits<double>::infinity();
      return true;
    }
    char* end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
      Fail(line_no, "bad sample value '" + text + "'");
      return false;
    }
    if (value < 0 && !allow_negative) {
      Fail(line_no, "negative sample value '" + text + "'");
      return false;
    }
    *out = value;
    return true;
  }

  void ParseSample(const std::string& line, int line_no) {
    size_t pos = 0;
    while (pos < line.size() && NameChar(line[pos])) ++pos;
    std::string name = line.substr(0, pos);
    if (!ValidName(name)) {
      Fail(line_no, "bad metric name");
      return;
    }

    std::string le;
    if (pos < line.size() && line[pos] == '{') {
      if (!ParseLabels(line, pos, line_no, &le)) return;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      Fail(line_no, "expected ' ' before sample value");
      return;
    }
    ++pos;
    size_t value_end = line.find(' ', pos);
    std::string value_text = line.substr(
        pos, value_end == std::string::npos ? std::string::npos
                                            : value_end - pos);
    // Negatives are validated after the family type resolves: only gauges may
    // go below zero.
    double value = 0;
    if (!ParseValue(value_text, line_no, &value, /*allow_negative=*/true)) {
      return;
    }

    bool has_exemplar = false;
    if (value_end != std::string::npos) {
      // Only ` # {labels} value` may follow the sample value.
      pos = value_end + 1;
      if (line.compare(pos, 2, "# ") != 0 || pos + 2 >= line.size() ||
          line[pos + 2] != '{') {
        Fail(line_no, "unexpected text after sample value");
        return;
      }
      pos += 2;
      if (!ParseLabels(line, pos, line_no, nullptr)) return;
      if (pos >= line.size() || line[pos] != ' ') {
        Fail(line_no, "exemplar needs a value");
        return;
      }
      ++pos;
      double exemplar_value = 0;
      if (!ParseValue(line.substr(pos), line_no, &exemplar_value)) return;
      has_exemplar = true;
    }

    // Resolve the family: gauges sample under their bare family name, so an
    // exact # TYPE match wins before trying the counter/histogram suffixes.
    auto suffix_is = [&](const char* suffix) {
      std::string s = suffix;
      return name.size() > s.size() &&
             name.compare(name.size() - s.size(), s.size(), s) == 0;
    };
    std::string family;
    std::string suffix;
    if (types_.count(name) != 0 && types_[name] == "gauge") {
      family = name;
    } else {
      for (const char* candidate : {"_total", "_bucket", "_count", "_sum"}) {
        if (!suffix_is(candidate)) continue;
        std::string base =
            name.substr(0, name.size() - std::string(candidate).size());
        if (types_.count(base) != 0) {
          family = base;
          suffix = candidate;
          break;
        }
      }
    }
    if (family.empty()) {
      Fail(line_no, "sample '" + name + "' has no # TYPE family");
      return;
    }
    const std::string& type = types_[family];
    if (has_exemplar && suffix != "_bucket") {
      Fail(line_no, "exemplar outside a histogram bucket");
      return;
    }
    if (value < 0 && type != "gauge") {
      Fail(line_no, "negative sample value '" + value_text + "'");
      return;
    }

    if (type == "counter") {
      if (suffix != "_total") {
        Fail(line_no, "counter family " + family + " exposes " + name);
        return;
      }
      counters_[family] = static_cast<uint64_t>(value);
      return;
    }
    if (type == "gauge") {
      if (!suffix.empty()) {
        Fail(line_no, "gauge family " + family + " exposes " + name);
        return;
      }
      gauges_[family] = static_cast<int64_t>(value);
      return;
    }
    if (type != "histogram") {
      return;
    }
    Histogram& hist = histograms_[family];
    if (suffix == "_bucket") {
      if (le.empty()) {
        Fail(line_no, "bucket without le label");
        return;
      }
      double le_value = 0;
      if (!ParseValue(le, line_no, &le_value)) return;
      if (le == "+Inf") {
        if (hist.has_inf) {
          Fail(line_no, "duplicate +Inf bucket for " + family);
          return;
        }
        hist.has_inf = true;
        hist.inf_count = static_cast<uint64_t>(value);
      } else if (hist.has_inf) {
        Fail(line_no, "+Inf bucket is not last for " + family);
        return;
      }
      if (!hist.buckets.empty()) {
        if (le_value <= hist.buckets.back().first) {
          Fail(line_no, "le not ascending for " + family);
          return;
        }
        if (static_cast<uint64_t>(value) < hist.buckets.back().second) {
          Fail(line_no, "bucket counts not cumulative for " + family);
          return;
        }
      }
      hist.buckets.emplace_back(le_value, static_cast<uint64_t>(value));
    } else if (suffix == "_count") {
      hist.has_count = true;
      hist.count = static_cast<uint64_t>(value);
    } else if (suffix == "_sum") {
      hist.has_sum = true;
      hist.sum = static_cast<uint64_t>(value);
    } else {
      Fail(line_no, "histogram family " + family + " exposes " + name);
    }
  }

  void Parse(const std::string& text) {
    if (text.empty() || text.back() != '\n') {
      error_ = "exposition must end with a newline";
      return;
    }
    std::istringstream lines(text);
    std::string line;
    int line_no = 0;
    bool saw_eof = false;
    while (std::getline(lines, line)) {
      ++line_no;
      if (saw_eof) {
        Fail(line_no, "content after # EOF");
        return;
      }
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream fields(line.substr(7));
        std::string name, type, extra;
        fields >> name >> type;
        if (fields >> extra) {
          Fail(line_no, "trailing text after # TYPE");
          return;
        }
        if (!ValidName(name)) {
          Fail(line_no, "bad # TYPE metric name");
          return;
        }
        if (type != "counter" && type != "histogram" && type != "gauge") {
          Fail(line_no, "unknown metric type '" + type + "'");
          return;
        }
        if (types_.count(name) != 0) {
          Fail(line_no, "duplicate # TYPE for " + name);
          return;
        }
        types_[name] = type;
        continue;
      }
      if (line.rfind("# HELP ", 0) == 0) {
        size_t name_end = line.find(' ', 7);
        std::string name =
            line.substr(7, name_end == std::string::npos ? std::string::npos
                                                         : name_end - 7);
        if (!ValidName(name)) {
          Fail(line_no, "bad # HELP metric name");
          return;
        }
        if (name_end != std::string::npos &&
            !ValidEscaping(line.substr(name_end + 1))) {
          Fail(line_no, "bad escape in # HELP text");
          return;
        }
        continue;
      }
      if (line.rfind("#", 0) == 0) {
        Fail(line_no, "unknown comment line");
        return;
      }
      if (line.empty()) {
        Fail(line_no, "blank line inside exposition");
        return;
      }
      ParseSample(line, line_no);
      if (!error_.empty()) return;
    }
    if (!saw_eof) {
      error_ = "missing # EOF terminator";
      return;
    }
    for (const auto& [name, hist] : histograms_) {
      if (!hist.has_inf) {
        error_ = "histogram " + name + " has no +Inf bucket";
        return;
      }
      if (!hist.has_count || !hist.has_sum) {
        error_ = "histogram " + name + " missing _count or _sum";
        return;
      }
      if (hist.inf_count != hist.count) {
        error_ = "histogram " + name + " +Inf bucket != _count";
        return;
      }
    }
  }

  std::string error_;
  std::map<std::string, std::string> types_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace maze::testutil

#endif  // MAZE_TESTS_OPENMETRICS_CHECKER_H_
