#include "rt/partition.h"

#include <gtest/gtest.h>

#include "core/rmat.h"

namespace maze::rt {
namespace {

TEST(Partition1DTest, VertexBalancedCoversAllVertices) {
  Partition1D p = Partition1D::VertexBalanced(100, 7);
  EXPECT_EQ(p.num_parts(), 7);
  EXPECT_EQ(p.Begin(0), 0u);
  EXPECT_EQ(p.End(6), 100u);
  VertexId covered = 0;
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(p.Begin(i), covered);
    covered += p.Size(i);
  }
  EXPECT_EQ(covered, 100u);
}

TEST(Partition1DTest, OwnerOfIsConsistentWithRanges) {
  Partition1D p = Partition1D::VertexBalanced(1000, 8);
  for (VertexId v = 0; v < 1000; ++v) {
    int owner = p.OwnerOf(v);
    EXPECT_GE(v, p.Begin(owner));
    EXPECT_LT(v, p.End(owner));
  }
}

TEST(Partition1DTest, SinglePartOwnsEverything) {
  Partition1D p = Partition1D::VertexBalanced(50, 1);
  EXPECT_EQ(p.OwnerOf(0), 0);
  EXPECT_EQ(p.OwnerOf(49), 0);
  EXPECT_EQ(p.Size(0), 50u);
}

TEST(Partition1DTest, MorePartsThanVertices) {
  Partition1D p = Partition1D::VertexBalanced(3, 8);
  VertexId total = 0;
  for (int i = 0; i < 8; ++i) total += p.Size(i);
  EXPECT_EQ(total, 3u);
}

TEST(Partition1DTest, EdgeBalancedEvensOutSkew) {
  // A skewed RMAT graph: edge-balanced ranges should have far more even edge
  // counts than vertex-balanced ones.
  EdgeList el = GenerateRmat(RmatParams::Graph500(12, 16, 3));
  el.Deduplicate();
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  constexpr int kParts = 8;
  Partition1D edge_bal = Partition1D::EdgeBalanced(g, kParts);
  Partition1D vert_bal = Partition1D::VertexBalanced(g.num_vertices(), kParts);

  auto max_edges = [&](const Partition1D& p) {
    EdgeId worst = 0;
    for (int i = 0; i < kParts; ++i) {
      EdgeId count = 0;
      for (VertexId v = p.Begin(i); v < p.End(i); ++v) count += g.OutDegree(v);
      worst = std::max(worst, count);
    }
    return worst;
  };
  EdgeId ideal = g.num_edges() / kParts;
  EXPECT_LE(max_edges(edge_bal), ideal * 2);
  // Edge balancing should not be worse than vertex balancing.
  EXPECT_LE(max_edges(edge_bal), max_edges(vert_bal) + ideal);
}

TEST(Partition1DTest, EdgeBalancedFromOffsetsMatchesGraphVariant) {
  EdgeList el = GenerateRmat(RmatParams::Graph500(10, 8, 5));
  el.Deduplicate();
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  Partition1D a = Partition1D::EdgeBalanced(g, 4);
  Partition1D b = Partition1D::EdgeBalancedFromOffsets(g.out_offsets(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a.Begin(i), b.Begin(i));
    EXPECT_EQ(a.End(i), b.End(i));
  }
}

TEST(Grid2DTest, SquareGrids) {
  Grid2D g1 = Grid2D::ForRanks(1);
  EXPECT_EQ(g1.side, 1);
  Grid2D g16 = Grid2D::ForRanks(16);
  EXPECT_EQ(g16.side, 4);
  EXPECT_EQ(g16.RankOf(2, 3), 11);
  EXPECT_EQ(g16.RowOf(11), 2);
  EXPECT_EQ(g16.ColOf(11), 3);
}

}  // namespace
}  // namespace maze::rt
