#include "util/prng.h"

#include <vector>

#include <gtest/gtest.h>

namespace maze {
namespace {

TEST(PrngTest, DeterministicForSeed) {
  Xorshift64Star a(123);
  Xorshift64Star b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Xorshift64Star a(1);
  Xorshift64Star b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(PrngTest, ZeroSeedIsRemapped) {
  Xorshift64Star rng(0);
  // xorshift with zero state would be stuck at zero forever.
  EXPECT_NE(rng.Next(), 0u);
  EXPECT_NE(rng.Next(), rng.Next());
}

TEST(PrngTest, NextBoundedStaysInRange) {
  Xorshift64Star rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(PrngTest, NextBoundedCoversRange) {
  Xorshift64Star rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_GT(c, 8000);  // Roughly uniform: each bucket near 10000.
    EXPECT_LT(c, 12000);
  }
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Xorshift64Star rng(13);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(PrngTest, GaussianMomentsAreSane) {
  Xorshift64Star rng(17);
  double sum = 0;
  double sq = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sq / kSamples, 1.0, 0.05);
}

TEST(SplitMixTest, ProducesDistinctStreams) {
  uint64_t s1 = 42;
  uint64_t s2 = 43;
  EXPECT_NE(SplitMix64(s1), SplitMix64(s2));
  // Repeated calls advance the state.
  uint64_t s = 7;
  uint64_t first = SplitMix64(s);
  uint64_t second = SplitMix64(s);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace maze
