// Cross-cutting property tests: invariants that must hold for every engine on
// randomized inputs — not specific outputs, but relationships (BFS edge
// conditions, PageRank mass bounds, CSR inverse consistency, codec round-trips
// under fuzzed densities, simulation-time monotonicity).
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "bench_support/runner.h"
#include "core/degree.h"
#include "core/graph.h"
#include "core/rmat.h"
#include "native/reference.h"
#include "tests/test_graphs.h"
#include "util/prng.h"

namespace maze {
namespace {

// --- Graph structural properties -----------------------------------------------

class GraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphPropertyTest, InAndOutAdjacencyAreInverse) {
  EdgeList el = GenerateRmat(RmatParams::Graph500(9, 6, GetParam()));
  el.Deduplicate();
  Graph g = Graph::FromEdges(el);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      auto in = g.InNeighbors(v);
      ASSERT_TRUE(std::binary_search(in.begin(), in.end(), u))
          << "edge " << u << "->" << v << " missing from in-CSR";
    }
  }
  EdgeId in_total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) in_total += g.InDegree(v);
  EXPECT_EQ(in_total, g.num_edges());
}

TEST_P(GraphPropertyTest, SymmetrizedGraphIsSymmetric) {
  EdgeList el = GenerateRmat(RmatParams::Graph500(9, 6, GetParam()));
  el.Symmetrize();
  Graph g = Graph::FromEdges(el, GraphDirections::kBoth);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      auto back = g.OutNeighbors(v);
      ASSERT_TRUE(std::binary_search(back.begin(), back.end(), u));
    }
  }
}

TEST_P(GraphPropertyTest, OrientationHalvesSymmetricEdges) {
  EdgeList sym = GenerateRmat(RmatParams::Graph500(9, 6, GetParam()));
  sym.Symmetrize();
  EdgeList oriented = sym;
  oriented.OrientBySmallerId();
  EXPECT_EQ(oriented.edges.size() * 2, sym.edges.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest,
                         ::testing::Values(1, 17, 33, 49, 65));

// --- BFS properties --------------------------------------------------------------

class BfsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BfsPropertyTest, DistancesDifferByAtMostOneAcrossEdges) {
  EdgeList el = testgraphs::SmallRmatUndirected(9, 6, GetParam());
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto dist = native::ReferenceBfs(g, 0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (dist[u] == kInfiniteDistance) continue;
    for (VertexId v : g.OutNeighbors(u)) {
      ASSERT_NE(dist[v], kInfiniteDistance)
          << "neighbor of reached vertex unreached";
      ASSERT_LE(dist[v], dist[u] + 1);
      ASSERT_LE(dist[u], dist[v] + 1);
    }
  }
}

TEST_P(BfsPropertyTest, EveryEngineSatisfiesTheEdgeCondition) {
  EdgeList el = testgraphs::SmallRmatUndirected(8, 4, GetParam());
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  for (bench::EngineKind engine : bench::AllEngines()) {
    bench::RunConfig config;
    auto result = bench::RunBfs(engine, el, rt::BfsOptions{0}, config);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      if (result.distance[u] == kInfiniteDistance) continue;
      for (VertexId v : g.OutNeighbors(u)) {
        ASSERT_LE(result.distance[v], result.distance[u] + 1)
            << bench::EngineName(engine);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsPropertyTest, ::testing::Values(2, 22, 42));

// --- PageRank properties -----------------------------------------------------------

class PageRankPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageRankPropertyTest, RanksBoundedBelowByJump) {
  Graph g = Graph::FromEdges(testgraphs::SmallRmat(9, 6, GetParam()));
  auto pr = native::ReferencePageRank(g, 8, 0.3);
  for (double r : pr) ASSERT_GE(r, 0.3 - 1e-12);
}

TEST_P(PageRankPropertyTest, TotalMassIsConservedUpToDanglingLoss) {
  // Unnormalized formulation: sum(PR) <= jump*n + (1-jump)*sum(prev PR); with
  // no dangling vertices this is an equality at the fixpoint scale.
  Graph g = Graph::FromEdges(testgraphs::SmallRmat(9, 6, GetParam()));
  const VertexId n = g.num_vertices();
  auto pr1 = native::ReferencePageRank(g, 1, 0.3);
  double sum1 = 0;
  for (double r : pr1) sum1 += r;
  // After one iteration from PR=1: sum <= 0.3n + 0.7n = n.
  EXPECT_LE(sum1, static_cast<double>(n) + 1e-6);
  EXPECT_GE(sum1, 0.3 * static_cast<double>(n) - 1e-6);
}

TEST_P(PageRankPropertyTest, IterationIsMonotoneInInfluence) {
  // A vertex with strictly more in-edges from identical sources ranks higher.
  EdgeList el;
  el.num_vertices = 5;
  // Sources 0, 1 point at 3; sources 0, 1, 2 point at 4.
  el.edges = {{0, 3}, {1, 3}, {0, 4}, {1, 4}, {2, 4}};
  Graph g = Graph::FromEdges(el);
  auto pr = native::ReferencePageRank(g, static_cast<int>(GetParam() % 5) + 1,
                                      0.3);
  EXPECT_GT(pr[4], pr[3]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageRankPropertyTest,
                         ::testing::Values(3, 23, 43));

// --- Triangle counting properties ---------------------------------------------------

TEST(TrianglePropertyTest, CountIsOrientationInvariant) {
  // Counting on the oriented graph equals brute force on the symmetric graph,
  // across several random graphs.
  for (uint64_t seed : {4u, 24u, 44u}) {
    EdgeList base = testgraphs::SmallRmat(8, 4, seed);
    EdgeList sym = base;
    sym.Symmetrize();
    Graph gsym = Graph::FromEdges(sym, GraphDirections::kOutOnly);
    EdgeList oriented = base;
    oriented.OrientBySmallerId();
    Graph g = Graph::FromEdges(oriented, GraphDirections::kOutOnly);
    EXPECT_EQ(native::ReferenceTriangleCount(g),
              native::BruteForceTriangleCount(gsym))
        << "seed " << seed;
  }
}

TEST(TrianglePropertyTest, AddingAnEdgeNeverDecreasesTriangles) {
  EdgeList el = testgraphs::SmallRmatOriented(8, 4, 7);
  Graph g1 = Graph::FromEdges(el, GraphDirections::kOutOnly);
  uint64_t before = native::ReferenceTriangleCount(g1);
  // Close one wedge explicitly: find u -> v, v -> w without u -> w.
  bool added = false;
  for (VertexId u = 0; u < g1.num_vertices() && !added; ++u) {
    for (VertexId v : g1.OutNeighbors(u)) {
      for (VertexId w : g1.OutNeighbors(v)) {
        auto nu = g1.OutNeighbors(u);
        if (!std::binary_search(nu.begin(), nu.end(), w)) {
          el.edges.push_back({u, w});
          added = true;
          break;
        }
      }
      if (added) break;
    }
  }
  ASSERT_TRUE(added);
  Graph g2 = Graph::FromEdges(el, GraphDirections::kOutOnly);
  EXPECT_GT(native::ReferenceTriangleCount(g2), before);
}

// --- Simulation properties ------------------------------------------------------------

TEST(SimulationPropertyTest, SlowerFabricNeverSpeedsUpNetworkBoundRuns) {
  EdgeList el = testgraphs::SmallRmat(10, 8, 5);
  rt::PageRankOptions opt;
  opt.iterations = 3;
  double prev = 0;
  for (const rt::CommModel& comm :
       {rt::CommModel::Mpi(), rt::CommModel::MultiSocket(),
        rt::CommModel::Socket(), rt::CommModel::Netty()}) {
    bench::RunConfig config;
    config.num_ranks = 8;
    config.comm_override = comm;
    auto r = bench::RunPageRank(bench::EngineKind::kNative, el, opt, config);
    // Wire-time component must be monotone in the fabric; compute is measured
    // and noisy, so compare the modeled lower bound: bytes / bandwidth.
    double wire = static_cast<double>(r.metrics.bytes_sent) /
                  comm.bandwidth_bytes_per_sec;
    EXPECT_GE(wire + 1e-12, prev);
    prev = wire;
  }
}

TEST(SimulationPropertyTest, MoreRanksSendMoreBytes) {
  EdgeList el = testgraphs::SmallRmat(10, 8, 5);
  rt::PageRankOptions opt;
  opt.iterations = 3;
  uint64_t prev = 0;
  for (int ranks : {2, 4, 8, 16}) {
    bench::RunConfig config;
    config.num_ranks = ranks;
    auto r = bench::RunPageRank(bench::EngineKind::kNative, el, opt, config);
    EXPECT_GE(r.metrics.bytes_sent, prev) << ranks;
    prev = r.metrics.bytes_sent;
  }
}

// --- Generator properties -----------------------------------------------------------

TEST(GeneratorPropertyTest, DegreeSkewGrowsWithRmatA) {
  double prev_share = 0;
  for (double a : {0.30, 0.45, 0.57, 0.65}) {
    RmatParams params{13, 16, a, (1.0 - a) / 3, (1.0 - a) / 3, 11, true};
    EdgeList el = GenerateRmat(params);
    el.Deduplicate();
    Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
    DegreeStats stats = ComputeOutDegreeStats(g);
    EXPECT_GT(stats.top1pct_edge_share, prev_share) << "a=" << a;
    prev_share = stats.top1pct_edge_share;
  }
}

}  // namespace
}  // namespace maze
