// Rank-parallel vs serial schedule equivalence: running simulated ranks
// concurrently on the task-scheduling pool must not change any engine's
// *answers* or its modeled network totals. Wire bytes and message counts are
// schedule-invariant by construction (ordered route sections, owner-partitioned
// claims, rank-ordered slot folding); this test asserts it end to end for every
// engine on PageRank and BFS.
#include <cstdlib>

#include <gtest/gtest.h>

#include "bench_support/runner.h"
#include "rt/rank_exec.h"
#include "tests/test_graphs.h"

namespace maze::bench {
namespace {

// The default pool is created lazily on first use; force it to 4 threads
// before anything touches it so the parallel schedule is exercised even on a
// single-core host (without this, ForEachRank falls back to the serial path).
const bool kForcePoolSize = [] {
  setenv("MAZE_THREADS", "4", /*overwrite=*/0);
  return true;
}();

int RanksFor(EngineKind engine) {
  return engine == EngineKind::kTaskflow ? 1 : 16;
}

class RankParallelTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void TearDown() override { rt::SetSerialRanks(-1); }
};

std::string EngineCaseName(const ::testing::TestParamInfo<EngineKind>& info) {
  return EngineName(info.param);
}

TEST_P(RankParallelTest, PageRankMatchesSerialSchedule) {
  const EngineKind engine = GetParam();
  EdgeList el = testgraphs::SmallRmat(9);
  rt::PageRankOptions opt;
  opt.iterations = 4;
  RunConfig config;
  config.num_ranks = RanksFor(engine);

  rt::SetSerialRanks(1);
  auto serial = RunPageRank(engine, el, opt, config);
  rt::SetSerialRanks(0);
  auto parallel = RunPageRank(engine, el, opt, config);

  ASSERT_EQ(parallel.ranks.size(), serial.ranks.size());
  for (size_t v = 0; v < serial.ranks.size(); ++v) {
    // datalite merges concurrent rank shards into one accumulator, so double
    // addition order may differ; everything else is bit-identical, but one
    // tolerance keeps the assertion uniform.
    ASSERT_NEAR(parallel.ranks[v], serial.ranks[v], 1e-9)
        << EngineName(engine) << " vertex " << v;
  }
  EXPECT_EQ(parallel.iterations, serial.iterations);
  EXPECT_EQ(parallel.metrics.bytes_sent, serial.metrics.bytes_sent);
  EXPECT_EQ(parallel.metrics.messages_sent, serial.metrics.messages_sent);
}

TEST_P(RankParallelTest, BfsMatchesSerialSchedule) {
  const EngineKind engine = GetParam();
  EdgeList el = testgraphs::SmallRmatUndirected(9);
  rt::BfsOptions opt{3};
  RunConfig config;
  config.num_ranks = RanksFor(engine);

  rt::SetSerialRanks(1);
  auto serial = RunBfs(engine, el, opt, config);
  rt::SetSerialRanks(0);
  auto parallel = RunBfs(engine, el, opt, config);

  EXPECT_EQ(parallel.distance, serial.distance) << EngineName(engine);
  EXPECT_EQ(parallel.levels, serial.levels);
  EXPECT_EQ(parallel.metrics.bytes_sent, serial.metrics.bytes_sent);
  EXPECT_EQ(parallel.metrics.messages_sent, serial.metrics.messages_sent);
}

INSTANTIATE_TEST_SUITE_P(Engines, RankParallelTest,
                         ::testing::ValuesIn(AllEngines()), EngineCaseName);

}  // namespace
}  // namespace maze::bench
