// Rank-parallel vs serial schedule equivalence: running simulated ranks
// concurrently on the task-scheduling pool must not change any engine's
// *answers* or its modeled network totals. Wire bytes and message counts are
// schedule-invariant by construction (ordered route sections, owner-partitioned
// claims, rank-ordered slot folding); this test asserts it end to end for every
// engine on PageRank and BFS.
#include <algorithm>
#include <cstdlib>

#include <gtest/gtest.h>

#include "bench_support/runner.h"
#include "core/weighted_graph.h"
#include "obs/attrib.h"
#include "rt/metrics.h"
#include "rt/rank_exec.h"
#include "tests/test_graphs.h"

namespace maze::bench {
namespace {

// The default pool is created lazily on first use; force it to 4 threads
// before anything touches it so the parallel schedule is exercised even on a
// single-core host (without this, ForEachRank falls back to the serial path).
const bool kForcePoolSize = [] {
  setenv("MAZE_THREADS", "4", /*overwrite=*/0);
  return true;
}();

int RanksFor(EngineKind engine) {
  return engine == EngineKind::kTaskflow ? 1 : 16;
}

class RankParallelTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void TearDown() override { rt::SetSerialRanks(-1); }
};

std::string EngineCaseName(const ::testing::TestParamInfo<EngineKind>& info) {
  return EngineName(info.param);
}

TEST_P(RankParallelTest, PageRankMatchesSerialSchedule) {
  const EngineKind engine = GetParam();
  EdgeList el = testgraphs::SmallRmat(9);
  rt::PageRankOptions opt;
  opt.iterations = 4;
  RunConfig config;
  config.num_ranks = RanksFor(engine);

  rt::SetSerialRanks(1);
  auto serial = RunPageRank(engine, el, opt, config);
  rt::SetSerialRanks(0);
  auto parallel = RunPageRank(engine, el, opt, config);

  ASSERT_EQ(parallel.ranks.size(), serial.ranks.size());
  for (size_t v = 0; v < serial.ranks.size(); ++v) {
    // datalite merges concurrent rank shards into one accumulator, so double
    // addition order may differ; everything else is bit-identical, but one
    // tolerance keeps the assertion uniform.
    ASSERT_NEAR(parallel.ranks[v], serial.ranks[v], 1e-9)
        << EngineName(engine) << " vertex " << v;
  }
  EXPECT_EQ(parallel.iterations, serial.iterations);
  EXPECT_EQ(parallel.metrics.bytes_sent, serial.metrics.bytes_sent);
  EXPECT_EQ(parallel.metrics.messages_sent, serial.metrics.messages_sent);
}

TEST_P(RankParallelTest, BfsMatchesSerialSchedule) {
  const EngineKind engine = GetParam();
  EdgeList el = testgraphs::SmallRmatUndirected(9);
  rt::BfsOptions opt{3};
  RunConfig config;
  config.num_ranks = RanksFor(engine);

  rt::SetSerialRanks(1);
  auto serial = RunBfs(engine, el, opt, config);
  rt::SetSerialRanks(0);
  auto parallel = RunBfs(engine, el, opt, config);

  EXPECT_EQ(parallel.distance, serial.distance) << EngineName(engine);
  EXPECT_EQ(parallel.levels, serial.levels);
  EXPECT_EQ(parallel.metrics.bytes_sent, serial.metrics.bytes_sent);
  EXPECT_EQ(parallel.metrics.messages_sent, serial.metrics.messages_sent);
}

TEST_P(RankParallelTest, SsspMatchesSerialSchedule) {
  const EngineKind engine = GetParam();
  if (!EngineSupportsSssp(engine)) GTEST_SKIP();
  EdgeList el = testgraphs::SmallRmatUndirected(9, 6, 7);
  WeightedGraph g = WeightedGraph::FromEdgesWithRandomWeights(el, 8.0f, 7);
  RunConfig config;
  config.num_ranks = RanksFor(engine);

  rt::SetSerialRanks(1);
  auto serial = RunSssp(engine, g, rt::SsspOptions{3}, config);
  rt::SetSerialRanks(0);
  auto parallel = RunSssp(engine, g, rt::SsspOptions{3}, config);

  EXPECT_EQ(parallel.distance, serial.distance) << EngineName(engine);
  EXPECT_EQ(parallel.metrics.bytes_sent, serial.metrics.bytes_sent);
  EXPECT_EQ(parallel.metrics.messages_sent, serial.metrics.messages_sent);
}

// Replaces measured per-rank compute with a deterministic function of
// schedule-invariant inputs and re-derives the aggregates (the
// attrib_differential_test recipe), so the attribution-JSON byte comparison is
// not at the mercy of host timer noise.
void CanonicalizeCompute(rt::RunMetrics* m) {
  double elapsed = 0;
  for (rt::StepRecord& s : m->steps) {
    if (!s.rank_compute_seconds.empty() && s.StepSeconds() > 0) {
      double max = 0;
      for (size_t r = 0; r < s.rank_compute_seconds.size(); ++r) {
        uint64_t bytes = r < s.rank_bytes.size() ? s.rank_bytes[r] : 0;
        double fake = 1e-4 * (1 + (s.step * 31 + static_cast<int>(r) * 7) % 5) +
                      static_cast<double>(bytes) * 1e-12;
        s.rank_compute_seconds[r] = fake;
        max = std::max(max, fake);
      }
      s.compute_seconds = max;
    }
    elapsed += s.StepSeconds();
  }
  m->elapsed_seconds = elapsed;
}

// The `--explain` decomposition must also be a pure function of the run's
// schedule-invariant records: identical JSON, byte for byte, across schedules.
TEST_P(RankParallelTest, AttributionJsonMatchesSerialSchedule) {
  const EngineKind engine = GetParam();
  EdgeList el = testgraphs::SmallRmat(9);
  rt::PageRankOptions opt;
  opt.iterations = 4;
  RunConfig config;
  config.num_ranks = RanksFor(engine);
  config.trace = true;

  rt::SetSerialRanks(1);
  auto serial = RunPageRank(engine, el, opt, config);
  rt::SetSerialRanks(0);
  auto parallel = RunPageRank(engine, el, opt, config);

  CanonicalizeCompute(&serial.metrics);
  CanonicalizeCompute(&parallel.metrics);
  EXPECT_EQ(obs::attrib::Attribute(serial.metrics).ToJson(),
            obs::attrib::Attribute(parallel.metrics).ToJson())
      << EngineName(engine);
}

INSTANTIATE_TEST_SUITE_P(Engines, RankParallelTest,
                         ::testing::ValuesIn(AllEngines()), EngineCaseName);

}  // namespace
}  // namespace maze::bench
