#include "core/ratings_gen.h"

#include <gtest/gtest.h>

namespace maze {
namespace {

TEST(RatingsGenTest, RespectsShapeParameters) {
  RatingsParams params;
  params.scale = 12;
  params.edge_factor = 8;
  params.num_items = 256;
  RatingsDataset ds = GenerateRatings(params);
  EXPECT_GT(ds.num_users, 0u);
  EXPECT_EQ(ds.num_items, 256u);
  EXPECT_GT(ds.ratings.size(), 0u);
  for (const Rating& r : ds.ratings) {
    ASSERT_LT(r.user, ds.num_users);
    ASSERT_LT(r.item, ds.num_items);
    ASSERT_GE(r.value, 1.0f);
    ASSERT_LE(r.value, 5.0f);
  }
}

TEST(RatingsGenTest, MinimumUserDegreeEnforced) {
  RatingsParams params;
  params.scale = 12;
  params.edge_factor = 8;
  params.num_items = 128;
  params.min_user_degree = 5;
  RatingsDataset ds = GenerateRatings(params);
  std::vector<uint32_t> degree(ds.num_users, 0);
  for (const Rating& r : ds.ratings) ++degree[r.user];
  for (VertexId u = 0; u < ds.num_users; ++u) {
    // The filter runs before folding collapses duplicates, so post-fold degree
    // can dip slightly below the threshold, but never to (near) zero.
    ASSERT_GE(degree[u], 1u) << "user " << u;
  }
}

TEST(RatingsGenTest, DeterministicForSeed) {
  RatingsParams params;
  params.scale = 11;
  params.num_items = 64;
  RatingsDataset a = GenerateRatings(params);
  RatingsDataset b = GenerateRatings(params);
  ASSERT_EQ(a.ratings.size(), b.ratings.size());
  for (size_t i = 0; i < a.ratings.size(); ++i) {
    ASSERT_EQ(a.ratings[i].user, b.ratings[i].user);
    ASSERT_EQ(a.ratings[i].item, b.ratings[i].item);
    ASSERT_EQ(a.ratings[i].value, b.ratings[i].value);
  }
}

TEST(RatingsGenTest, NoDuplicateUserItemPairs) {
  RatingsParams params;
  params.scale = 11;
  params.num_items = 64;
  RatingsDataset ds = GenerateRatings(params);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(ds.ratings.size());
  for (const Rating& r : ds.ratings) pairs.emplace_back(r.user, r.item);
  std::sort(pairs.begin(), pairs.end());
  EXPECT_EQ(std::adjacent_find(pairs.begin(), pairs.end()), pairs.end());
}

TEST(RatingsGenTest, ItemPopularityIsSkewed) {
  // The folded power-law construction should leave item popularity skewed like
  // Netflix: a few blockbuster items collect a disproportionate rating share.
  RatingsParams params;
  params.scale = 14;
  params.edge_factor = 8;
  params.num_items = 512;
  RatingsDataset ds = GenerateRatings(params);
  std::vector<uint64_t> item_count(ds.num_items, 0);
  for (const Rating& r : ds.ratings) ++item_count[r.item];
  std::sort(item_count.begin(), item_count.end(), std::greater<>());
  uint64_t top_5pct = 0;
  for (size_t i = 0; i < item_count.size() / 20; ++i) top_5pct += item_count[i];
  double share = static_cast<double>(top_5pct) /
                 static_cast<double>(ds.ratings.size());
  EXPECT_GT(share, 0.15);
}

TEST(RatingsGenTest, StarDistributionCentersNearNetflixMean) {
  RatingsParams params;
  params.scale = 13;
  params.num_items = 256;
  RatingsDataset ds = GenerateRatings(params);
  double sum = 0;
  for (const Rating& r : ds.ratings) sum += r.value;
  double mean = sum / static_cast<double>(ds.ratings.size());
  // Netflix's mean rating is ~3.6.
  EXPECT_GT(mean, 3.2);
  EXPECT_LT(mean, 4.0);
}

TEST(RatingsGenTest, ToGraphBuildsConsistentBipartite) {
  RatingsParams params;
  params.scale = 10;
  params.num_items = 64;
  RatingsDataset ds = GenerateRatings(params);
  BipartiteGraph g = ds.ToGraph();
  EXPECT_EQ(g.num_ratings(), ds.ratings.size());
  EXPECT_EQ(g.num_users(), ds.num_users);
  EXPECT_EQ(g.num_items(), ds.num_items);
}

}  // namespace
}  // namespace maze
