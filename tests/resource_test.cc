// System-metrics layer tests: the tracking arena and counting allocator, the
// Exchange message-buffer accounting, schedule invariance of the recorded
// footprints, utilization timelines partitioning the wire totals, and the
// Perfetto counter-track export schema.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_support/report.h"
#include "bench_support/runner.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/resource.h"
#include "rt/exchange.h"
#include "rt/fault.h"
#include "rt/metrics.h"
#include "rt/rank_exec.h"
#include "rt/sim_clock.h"
#include "tests/json_checker.h"
#include "tests/test_graphs.h"

namespace maze {
namespace {

using obs::CountingAllocator;
using obs::MemPhase;
using obs::TrackingArena;
using testutil::CountOccurrences;
using testutil::JsonChecker;

// Force a multi-threaded pool before anything touches it, so the parallel
// schedule really runs ranks concurrently (see rank_parallel_test.cc).
const bool kForcePoolSize = [] {
  setenv("MAZE_THREADS", "4", /*overwrite=*/0);
  return true;
}();

class ResourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(false);
    obs::SetResourceEnabled(false);
    obs::ResetAll();
  }
  void TearDown() override {
    obs::SetEnabled(false);
    obs::SetResourceEnabled(false);
    obs::ResetAll();
    rt::SetSerialRanks(-1);
  }
};

// --- TrackingArena --------------------------------------------------------------

TEST_F(ResourceTest, ArenaTracksLiveAndPeakPerPhase) {
  TrackingArena arena(2);
  arena.Charge(0, MemPhase::kGraph, 100);
  arena.Charge(0, MemPhase::kMessageBuffers, 50);
  arena.Release(0, MemPhase::kMessageBuffers, 50);
  arena.Charge(0, MemPhase::kMessageBuffers, 30);
  arena.Charge(1, MemPhase::kGraph, 70);

  EXPECT_EQ(arena.LiveBytes(0, MemPhase::kGraph), 100u);
  EXPECT_EQ(arena.LiveBytes(0, MemPhase::kMessageBuffers), 30u);
  EXPECT_EQ(arena.PhasePeak(MemPhase::kGraph), 100u);       // Max over ranks.
  EXPECT_EQ(arena.PhasePeak(MemPhase::kMessageBuffers), 50u);  // Watermark.
  // Rank 0's footprint peaked at 100 + 50 (graph + first buffer burst).
  EXPECT_EQ(arena.RankPeak(0), 150u);
  EXPECT_EQ(arena.RankPeak(1), 70u);
  EXPECT_EQ(arena.PeakFootprint(), 150u);
}

TEST_F(ResourceTest, ArenaReleaseSaturatesAtZero) {
  TrackingArena arena(1);
  arena.Charge(0, MemPhase::kEngineState, 10);
  arena.Release(0, MemPhase::kEngineState, 25);  // Over-release clamps.
  EXPECT_EQ(arena.LiveBytes(0, MemPhase::kEngineState), 0u);
  EXPECT_EQ(arena.PhasePeak(MemPhase::kEngineState), 10u);
}

TEST_F(ResourceTest, ArenaResetClearsEverything) {
  TrackingArena arena(1);
  arena.Charge(0, MemPhase::kGraph, 64);
  arena.Reset();
  EXPECT_EQ(arena.LiveBytes(0, MemPhase::kGraph), 0u);
  EXPECT_EQ(arena.PeakFootprint(), 0u);
}

// --- CountingAllocator ----------------------------------------------------------

TEST_F(ResourceTest, CountingAllocatorChargesOnlyWhenEnabled) {
  TrackingArena arena(1);
  {
    std::vector<int, CountingAllocator<int>> v(
        CountingAllocator<int>(&arena, 0, MemPhase::kMessageBuffers));
    v.resize(100);  // Disabled: no charge.
    EXPECT_EQ(arena.LiveBytes(0, MemPhase::kMessageBuffers), 0u);
  }
  obs::SetResourceEnabled(true);
  {
    std::vector<int, CountingAllocator<int>> v(
        CountingAllocator<int>(&arena, 0, MemPhase::kMessageBuffers));
    v.reserve(100);
    EXPECT_EQ(arena.LiveBytes(0, MemPhase::kMessageBuffers),
              100 * sizeof(int));
  }
  // Destruction released the buffer; the watermark survives.
  EXPECT_EQ(arena.LiveBytes(0, MemPhase::kMessageBuffers), 0u);
  EXPECT_EQ(arena.PhasePeak(MemPhase::kMessageBuffers), 100 * sizeof(int));
}

TEST_F(ResourceTest, CountingAllocatorNullArenaIsInert) {
  obs::SetResourceEnabled(true);
  std::vector<int, CountingAllocator<int>> v;  // Default: no arena bound.
  v.resize(1000);
  EXPECT_EQ(v.size(), 1000u);
}

// --- Exchange message-buffer accounting -----------------------------------------

TEST_F(ResourceTest, ExchangeChargesBoxesToOwningRanks) {
  obs::SetResourceEnabled(true);
  TrackingArena arena(3);
  {
    rt::Exchange<uint64_t> ex(3, &arena);
    ex.OutBox(0, 2) = {1, 2, 3, 4};
    ex.OutBox(1, 2) = {5};
    // Outbox buffers are charged to the sender.
    EXPECT_GE(arena.LiveBytes(0, MemPhase::kMessageBuffers),
              4 * sizeof(uint64_t));
    EXPECT_GE(arena.LiveBytes(1, MemPhase::kMessageBuffers), sizeof(uint64_t));
    EXPECT_EQ(arena.LiveBytes(2, MemPhase::kMessageBuffers), 0u);

    rt::SimClock clock(3, rt::CommModel::Mpi());
    ex.Deliver(&clock, sizeof(uint64_t));
    // Delivery re-homes the records: dst-bound inbox buffers now hold them.
    EXPECT_GE(arena.LiveBytes(2, MemPhase::kMessageBuffers),
              5 * sizeof(uint64_t));
    EXPECT_EQ(std::vector<uint64_t>(ex.InBox(2, 0).begin(),
                                    ex.InBox(2, 0).end()),
              (std::vector<uint64_t>{1, 2, 3, 4}));
  }
  // Exchange destruction frees every box.
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(arena.LiveBytes(r, MemPhase::kMessageBuffers), 0u) << r;
  }
  EXPECT_GT(arena.PeakFootprint(), 0u);
}

TEST_F(ResourceTest, ExchangeDedupTableChargesReceiverMessageBuffers) {
  // Under a transport fault plan, the receiver's dedup table (ids of frames
  // the plan duplicated in flight) is real fault-mode state: it must allocate
  // through the counting allocator and land in the receiving rank's
  // message-buffer budget.
  obs::SetResourceEnabled(true);
  auto spec = rt::fault::ParseFaultSpec("seed=8,dup=0.5").value();
  rt::SimClock clock(2, rt::CommModel::Mpi(), /*trace=*/false, spec);
  rt::Exchange<uint64_t> ex(2, &clock.arena());
  for (int i = 0; i < 400; ++i) {
    ex.OutBox(0, 1).push_back(static_cast<uint64_t>(i));
  }
  const uint64_t receiver_before =
      clock.arena().LiveBytes(1, MemPhase::kMessageBuffers);
  ex.Deliver(&clock, sizeof(uint64_t));
  ASSERT_GT(ex.DedupTableSize(1), 0u);
  // Receiver now holds the inbox plus the dedup ids; the dedup ids alone
  // account for at least their own storage on top of the moved inbox buffer.
  EXPECT_GE(clock.arena().LiveBytes(1, MemPhase::kMessageBuffers),
            receiver_before + 400 * sizeof(uint64_t) +
                ex.DedupTableSize(1) * sizeof(uint64_t));
  EXPECT_EQ(ex.DedupTableSize(0), 0u);
}

TEST_F(ResourceTest, BspCheckpointBuffersAreArenaAttributed) {
  // Superstep checkpoints copy the full run state (values + boxed inboxes);
  // those buffers must show up in the run's phase-attributed footprint, not
  // escape untracked. Compare a checkpointing run against a fault-free one.
  obs::SetResourceEnabled(true);
  EdgeList el = testgraphs::SmallRmat(9);
  rt::PageRankOptions opt;
  opt.iterations = 4;
  bench::RunConfig config;
  config.num_ranks = 4;
  auto plain = bench::RunPageRank(bench::EngineKind::kBspgraph, el, opt,
                                  config);
  config.faults = rt::fault::ParseFaultSpec("ckpt=1,ckpt_lat=0.001").value();
  auto ckpt = bench::RunPageRank(bench::EngineKind::kBspgraph, el, opt,
                                 config);
  EXPECT_GT(ckpt.metrics.checkpoints_written, 0u);
  // Checkpoint copies of the engine state and message buffers raise both
  // phase watermarks above the fault-free run's.
  EXPECT_GT(ckpt.metrics.memory_state_bytes, plain.metrics.memory_state_bytes);
  EXPECT_GE(ckpt.metrics.memory_msgbuf_bytes,
            plain.metrics.memory_msgbuf_bytes);
  EXPECT_GT(ckpt.metrics.memory_peak_bytes, plain.metrics.memory_peak_bytes);
}

TEST_F(ResourceTest, ExchangeWithoutArenaStillDelivers) {
  obs::SetResourceEnabled(true);
  rt::Exchange<int> ex(2);  // No arena bound: the null allocator is inert.
  ex.OutBox(0, 1) = {7, 8};
  ex.Deliver(nullptr);
  EXPECT_EQ(ex.InboundCount(1), 2u);
}

// --- Schedule invariance of the recorded footprint ------------------------------

TEST_F(ResourceTest, FootprintIsScheduleInvariant) {
  // Memory attribution must not depend on how rank tasks interleave: per-rank
  // arena slots plus in-rank sequencing make the serial and rank-parallel
  // schedules record identical watermarks, byte for byte. bspgraph and
  // vertexlab also exercise the dynamic per-step turnstile charges.
  EdgeList el = testgraphs::SmallRmat(9);
  rt::PageRankOptions opt;
  opt.iterations = 4;
  for (bench::EngineKind engine :
       {bench::EngineKind::kNative, bench::EngineKind::kVertexlab,
        bench::EngineKind::kBspgraph, bench::EngineKind::kMatblas,
        bench::EngineKind::kDatalite}) {
    bench::RunConfig config;
    config.num_ranks = 16;

    rt::SetSerialRanks(1);
    auto serial = bench::RunPageRank(engine, el, opt, config);
    rt::SetSerialRanks(0);
    auto parallel = bench::RunPageRank(engine, el, opt, config);

    const char* name = bench::EngineName(engine);
    EXPECT_EQ(parallel.metrics.memory_peak_bytes,
              serial.metrics.memory_peak_bytes)
        << name;
    EXPECT_EQ(parallel.metrics.memory_graph_bytes,
              serial.metrics.memory_graph_bytes)
        << name;
    EXPECT_EQ(parallel.metrics.memory_state_bytes,
              serial.metrics.memory_state_bytes)
        << name;
    EXPECT_EQ(parallel.metrics.memory_msgbuf_bytes,
              serial.metrics.memory_msgbuf_bytes)
        << name;
    EXPECT_GT(serial.metrics.memory_peak_bytes, 0u) << name;
  }
}

// --- Utilization timelines ------------------------------------------------------

TEST_F(ResourceTest, TimelineBucketsSumToExchangeWireTotals) {
  // Drive the clock + Exchange directly: the per-(step, rank) buckets must
  // partition the delivered wire bytes exactly, and every fraction must be a
  // fraction.
  constexpr int kRanks = 4;
  rt::SimClock clock(kRanks, rt::CommModel::Mpi(), /*trace=*/true);
  rt::Exchange<uint64_t> ex(kRanks, &clock.arena());

  uint64_t posted = 0;
  for (int step = 0; step < 5; ++step) {
    for (int src = 0; src < kRanks; ++src) {
      clock.RecordCompute(src, 1e-4 * (src + 1));
      for (int dst = 0; dst < kRanks; ++dst) {
        if (src == dst) continue;
        for (int i = 0; i <= step + src; ++i) {
          ex.OutBox(src, dst).push_back(static_cast<uint64_t>(i));
          posted += sizeof(uint64_t);
        }
      }
    }
    ex.Deliver(&clock, sizeof(uint64_t));
    ex.ClearInboxes();
    clock.EndStep();
  }
  rt::RunMetrics metrics = clock.Finish();
  EXPECT_EQ(metrics.bytes_sent, posted);

  auto buckets = rt::UtilizationTimeline(metrics);
  ASSERT_EQ(buckets.size(), static_cast<size_t>(5 * kRanks));
  uint64_t bucket_bytes = 0;
  for (const rt::UtilizationBucket& b : buckets) {
    bucket_bytes += b.bytes;
    EXPECT_GE(b.cpu_busy, 0.0);
    EXPECT_LE(b.cpu_busy, 1.0);
    EXPECT_GE(b.bw_utilization, 0.0);
    EXPECT_LE(b.bw_utilization, 1.0);
    EXPECT_GT(b.duration_seconds, 0.0);
  }
  EXPECT_EQ(bucket_bytes, metrics.bytes_sent);
  // Rank 3 was given 4x rank 0's compute, so its busy fraction dominates in
  // every step bucket.
  for (size_t i = 0; i + kRanks - 1 < buckets.size(); i += kRanks) {
    EXPECT_GT(buckets[i + kRanks - 1].cpu_busy, buckets[i].cpu_busy);
  }
}

TEST_F(ResourceTest, TimelineEmptyWithoutTrace) {
  rt::SimClock clock(2, rt::CommModel::Mpi());
  clock.RecordCompute(0, 1e-4);
  clock.EndStep();
  rt::RunMetrics metrics = clock.Finish();
  EXPECT_TRUE(rt::UtilizationTimeline(metrics).empty());
}

TEST_F(ResourceTest, TimelineMatchesEngineWireTotals) {
  // End to end through a real engine: traced runs expose per-rank buckets
  // whose byte counts sum back to the run's wire totals.
  EdgeList el = testgraphs::SmallRmat(9);
  rt::PageRankOptions opt;
  opt.iterations = 3;
  bench::RunConfig config;
  config.num_ranks = 4;
  config.trace = true;
  for (bench::EngineKind engine :
       {bench::EngineKind::kNative, bench::EngineKind::kBspgraph}) {
    auto result = bench::RunPageRank(engine, el, opt, config);
    uint64_t bucket_bytes = 0;
    for (const auto& b : rt::UtilizationTimeline(result.metrics)) {
      bucket_bytes += b.bytes;
      EXPECT_LE(b.cpu_busy, 1.0) << bench::EngineName(engine);
      EXPECT_LE(b.bw_utilization, 1.0) << bench::EngineName(engine);
    }
    EXPECT_EQ(bucket_bytes, result.metrics.bytes_sent)
        << bench::EngineName(engine);
  }
}

// --- Counter tracks in the Chrome trace export ----------------------------------

TEST_F(ResourceTest, CounterTracksExportAsPerfettoCounterEvents) {
  obs::SetEnabled(true);
  rt::SimClock clock(2, rt::CommModel::Mpi());
  for (int step = 0; step < 3; ++step) {
    clock.RecordCompute(0, 2e-4);
    clock.RecordCompute(1, 1e-4);
    clock.RecordSend(0, 1, 4096, 1);
    clock.EndStep();
  }
  clock.Finish();
  obs::SetEnabled(false);

  std::string json = obs::ChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  // One cpu_util and one bw_util sample per rank per step.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"C\""), 12u);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"cpu_util\""), 6u);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"bw_util\""), 6u);
  // Counter samples land on the synthetic simulated-rank pids, carrying the
  // sample value in args under the track's own name.
  EXPECT_NE(json.find("\"pid\":10000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":10001"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"cpu_util\":"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"bw_util\":"), std::string::npos);
}

// --- ResourceReport rendering ---------------------------------------------------

TEST_F(ResourceTest, ResourceReportJsonAndMarkdown) {
  obs::ResourceReport report;
  obs::ResourceRow row;
  row.engine = "bspgraph";
  row.algorithm = "pagerank \"quoted\"";  // Hostile strings must stay valid.
  row.dataset = "rmat\\scale";
  row.ranks = 4;
  row.elapsed_seconds = 0.125;
  row.cpu_utilization = 0.5;
  row.footprint_bytes = 16u << 20;
  row.msg_buffer_bytes = 12u << 20;
  report.Add(row);
  obs::ResourceRow row2 = row;
  row2.engine = "native";
  row2.algorithm = "pagerank \"quoted\"";
  report.Add(row2);

  std::string json = report.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"footprint_bytes\": 16777216"), std::string::npos);

  std::string md = report.ToMarkdown();
  EXPECT_NE(md.find("### Resource report: pagerank \"quoted\""),
            std::string::npos);
  EXPECT_NE(md.find("| bspgraph |"), std::string::npos);
  EXPECT_NE(md.find("| native |"), std::string::npos);
  EXPECT_NE(md.find("16.00"), std::string::npos);  // Footprint MiB.
}

TEST_F(ResourceTest, ResourceRowFromMeasurementFillsUtilizationAndPhases) {
  bench::Measurement m;
  m.engine = bench::EngineKind::kBspgraph;
  m.algorithm = "pagerank";
  m.dataset = "rmat";
  m.ranks = 4;
  m.metrics.elapsed_seconds = 2.0;
  m.metrics.bytes_sent = 8ull << 30;
  m.metrics.peak_network_bw = 2.75e9;
  m.metrics.modeled_peak_bw = 5.5e9;
  m.metrics.memory_peak_bytes = 100;
  m.metrics.memory_graph_bytes = 40;
  m.metrics.memory_state_bytes = 25;
  m.metrics.memory_msgbuf_bytes = 35;
  rt::StepRecord s;
  s.compute_seconds = 1.0;
  s.wire_seconds = 1.0;
  m.metrics.steps = {s};

  obs::ResourceRow row = bench::ResourceRowFrom(m);
  EXPECT_DOUBLE_EQ(row.peak_bw_utilization, 0.5);
  // (8 GiB / 4 ranks) / (2 s * 5.5e9 B/s).
  EXPECT_NEAR(row.avg_bw_utilization,
              (8.0 * (1ull << 30) / 4) / (2.0 * 5.5e9), 1e-12);
  EXPECT_EQ(row.footprint_bytes, 100u);
  EXPECT_EQ(row.graph_bytes, 40u);
  EXPECT_EQ(row.state_bytes, 25u);
  EXPECT_EQ(row.msg_buffer_bytes, 35u);
  EXPECT_NEAR(row.step_p50_us, 2e6, 1e-3);  // One 2 s step.
}

}  // namespace
}  // namespace maze
