#include "core/rmat.h"

#include <gtest/gtest.h>

#include "core/degree.h"
#include "core/graph.h"

namespace maze {
namespace {

TEST(RmatTest, ProducesRequestedCounts) {
  RmatParams params = RmatParams::Graph500(10, 8, /*seed=*/3);
  EdgeList el = GenerateRmat(params);
  EXPECT_EQ(el.num_vertices, 1u << 10);
  EXPECT_EQ(el.edges.size(), (1u << 10) * 8u);
  for (const Edge& e : el.edges) {
    ASSERT_LT(e.src, el.num_vertices);
    ASSERT_LT(e.dst, el.num_vertices);
  }
}

TEST(RmatTest, DeterministicForSeed) {
  RmatParams params = RmatParams::Graph500(9, 4, /*seed=*/11);
  EdgeList a = GenerateRmat(params);
  EdgeList b = GenerateRmat(params);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(RmatTest, DifferentSeedsDiffer) {
  EdgeList a = GenerateRmat(RmatParams::Graph500(9, 4, 1));
  EdgeList b = GenerateRmat(RmatParams::Graph500(9, 4, 2));
  EXPECT_NE(a.edges, b.edges);
}

TEST(RmatTest, SkewedDegreeDistribution) {
  // Graph500 parameters must yield the heavy skew the paper's abstract calls out:
  // the top 1% of vertices should own a large share of all edges.
  EdgeList el = GenerateRmat(RmatParams::Graph500(14, 16, 5));
  el.Deduplicate();
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  DegreeStats stats = ComputeOutDegreeStats(g);
  EXPECT_GT(stats.top1pct_edge_share, 0.15);
  EXPECT_GT(stats.max_degree, 100u);
}

TEST(RmatTest, UniformParametersAreNotSkewed) {
  // A = B = C = 0.25 degenerates to (nearly) Erdos-Renyi: little skew.
  RmatParams params{14, 16, 0.25, 0.25, 0.25, 5, true};
  EdgeList el = GenerateRmat(params);
  el.Deduplicate();
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  DegreeStats uniform = ComputeOutDegreeStats(g);
  EXPECT_LT(uniform.top1pct_edge_share, 0.10);
}

TEST(RmatTest, PermutationPreservesDegreeMultiset) {
  RmatParams with_perm = RmatParams::Graph500(10, 8, 21);
  RmatParams no_perm = with_perm;
  no_perm.permute_vertices = false;
  EdgeList a = GenerateRmat(with_perm);
  EdgeList b = GenerateRmat(no_perm);
  // Same number of edges; the permutation only relabels endpoints.
  EXPECT_EQ(a.edges.size(), b.edges.size());
  EXPECT_NE(a.edges, b.edges);
}

TEST(RmatTest, TriangleParamsReduceTriangleDensity) {
  // §4.1.2: triangle counting uses A=0.45, B=C=0.15 "to reduce the number of
  // triangles"; verify the parameterization produces fewer closed wedges than
  // the default generator at the same size.
  auto count_triangles = [](EdgeList el) {
    el.OrientBySmallerId();
    Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
    uint64_t count = 0;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v : g.OutNeighbors(u)) {
        auto a = g.OutNeighbors(u);
        auto b = g.OutNeighbors(v);
        size_t i = 0, j = 0;
        while (i < a.size() && j < b.size()) {
          if (a[i] < b[j]) {
            ++i;
          } else if (a[i] > b[j]) {
            ++j;
          } else {
            ++count, ++i, ++j;
          }
        }
      }
    }
    return count;
  };
  uint64_t dense = count_triangles(GenerateRmat(RmatParams::Graph500(12, 8, 9)));
  uint64_t sparse =
      count_triangles(GenerateRmat(RmatParams::TriangleCounting(12, 8, 9)));
  EXPECT_LT(sparse, dense);
}

}  // namespace
}  // namespace maze
