// Concurrency stress for the serving layer, designed to run under
// ThreadSanitizer (CI: serve.yml). Many client threads hammer one Service with
// a mix of duplicate and distinct requests while another thread bumps snapshot
// epochs and churns pause/resume. Checks that survive arbitrary interleaving:
//
//   * every response for a given (algo, engine, params) is byte-identical,
//     across epochs too — the test sources are deterministic, so dedup, cache,
//     and fresh execution must all serialize the same answer;
//   * the request-accounting identities hold after drain;
//   * no request is lost: every future resolves with OK or a legitimate
//     admission outcome (kUnavailable under backpressure).
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/datasets.h"
#include "obs/counters.h"
#include "serve/bill.h"
#include "serve/service.h"
#include "util/check.h"

namespace maze::serve {
namespace {

EdgeList TestGraph() {
  auto loaded = TryLoadGraphDataset("facebook", /*scale_adjust=*/-6);
  MAZE_CHECK(loaded.ok());
  return std::move(loaded).value();
}

Request MakeRequest(int variant) {
  Request r;
  r.snapshot = "g";
  r.engine = "native";
  switch (variant % 4) {
    case 0:
      r.algo = "pagerank";
      r.iterations = 1 + (variant / 4) % 3;
      break;
    case 1:
      r.algo = "bfs";
      r.source = static_cast<VertexId>((variant / 4) % 8);
      break;
    case 2:
      r.algo = "cc";
      break;
    default:
      r.algo = "triangles";
      break;
  }
  return r;
}

// Parameter signature independent of epoch, for cross-epoch byte-identity.
std::string VariantKey(const Request& r) {
  return r.algo + "/it=" + std::to_string(r.iterations) +
         "/src=" + std::to_string(r.source);
}

TEST(ServeStressTest, ConcurrentClientsEpochBumpsAndPauseChurn) {
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 24;

  ServiceOptions options;
  options.workers = 3;
  options.queue_depth = 16;
  Service service(options);
  service.registry().Install("g", TestGraph());

  std::atomic<bool> done{false};
  // Epoch bumper: reinstalls the same deterministic source, so answers are
  // identical across epochs while cache keys are not.
  std::thread bumper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      service.registry().Install("g", TestGraph());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  // Pause/resume churn: stalls dispatch at arbitrary points so queue buildup,
  // rejection, and dedup-join paths all get exercised.
  std::thread churn([&] {
    while (!done.load(std::memory_order_relaxed)) {
      service.Pause();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      service.Resume();
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  std::vector<std::thread> clients;
  std::mutex results_mu;
  // variant key -> first payload seen; all later payloads must match.
  std::map<std::string, std::string> canonical;
  std::atomic<uint64_t> ok_count{0}, rejected_count{0}, other_count{0};

  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        Request r = MakeRequest(c + i);
        Response resp = service.Call(r);
        if (resp.status.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(results_mu);
          auto [it, inserted] =
              canonical.emplace(VariantKey(r), resp.payload);
          if (!inserted) {
            EXPECT_EQ(resp.payload, it->second)
                << "divergent payload for " << it->first
                << " (epoch " << resp.epoch << ")";
          }
        } else if (resp.status.code() == StatusCode::kUnavailable) {
          rejected_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          other_count.fetch_add(1, std::memory_order_relaxed);
          ADD_FAILURE() << "unexpected status: " << resp.status.ToString();
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  done.store(true, std::memory_order_relaxed);
  bumper.join();
  churn.join();
  service.Resume();
  service.Drain();

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kClients) * kRequestsPerClient;
  EXPECT_EQ(ok_count + rejected_count + other_count, kTotal);
  EXPECT_GT(ok_count, 0u);

  ServiceStats s = service.Stats();
  EXPECT_EQ(s.submitted, kTotal);
  EXPECT_EQ(s.submitted,
            s.completed + s.failed + s.expired + s.rejected + s.invalid);
  EXPECT_EQ(s.submitted, s.admitted + s.dedup_joined + s.cache_hits +
                             s.rejected + s.invalid);
  EXPECT_EQ(s.rejected, rejected_count.load());
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.invalid, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.inflight, 0u);

  // Bill conservation survives arbitrary interleaving: every OK response was
  // billed, and the bills sum back to the flight costs.
  BillLedger ledger = service.Bills();
  EXPECT_EQ(ledger.billed.entries, s.completed);
  EXPECT_TRUE(BillsConserve(ledger.flights, ledger.billed))
      << "flights " << ledger.flights.ToJson() << " vs billed "
      << ledger.billed.ToJson();
}

// Tight loop on the hot Submit path with a single hot key: maximizes
// cache-hit and dedup-join interleavings against flight retirement.
TEST(ServeStressTest, HotKeySubmitStorm) {
  ServiceOptions options;
  options.workers = 2;
  Service service(options);
  service.registry().Install("g", TestGraph());

  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::atomic<uint64_t> ok_count{0};
  std::mutex payload_mu;
  std::string expected;

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        Request r;
        r.snapshot = "g";
        r.algo = "pagerank";
        r.iterations = 2;
        Response resp = service.Call(r);
        ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
        ok_count.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(payload_mu);
        if (expected.empty()) {
          expected = resp.payload;
        } else {
          EXPECT_EQ(resp.payload, expected);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  service.Drain();

  constexpr uint64_t kTotal = static_cast<uint64_t>(kClients) * kPerClient;
  EXPECT_EQ(ok_count.load(), kTotal);
  ServiceStats s = service.Stats();
  EXPECT_EQ(s.completed, kTotal);
  // One hot key: almost everything dedups or hits; executions are rare. The
  // exact split depends on timing, but the identity must balance.
  EXPECT_EQ(s.admitted + s.dedup_joined + s.cache_hits, kTotal);
  EXPECT_GE(s.cache_hits + s.dedup_joined, kTotal - s.admitted);

  // One hot key billed kTotal ways across fresh/dedup/hit paths: the split
  // must still sum back to exactly what the (rare) executions cost.
  BillLedger ledger = service.Bills();
  EXPECT_EQ(ledger.billed.entries, kTotal);
  EXPECT_TRUE(BillsConserve(ledger.flights, ledger.billed))
      << "flights " << ledger.flights.ToJson() << " vs billed "
      << ledger.billed.ToJson();
}

// The serve hot path must never take the obs registry lock per request: every
// counter/histogram/exemplar handle is cached in the constructor-warmed
// ServeObs struct. A storm of cache-hit Calls — the hottest path — moves
// obs::RegistryLookups() by exactly zero.
TEST(ServeStressTest, HotPathPerformsZeroRegistryLookups) {
  Service service;
  service.registry().Install("g", TestGraph());
  Request r;
  r.snapshot = "g";
  r.algo = "pagerank";
  r.iterations = 2;
  ASSERT_TRUE(service.Call(r).status.ok());  // Warm the key to completion.
  service.Drain();

  const uint64_t before = obs::RegistryLookups();
  for (int i = 0; i < 200; ++i) {
    Response resp = service.Call(r);
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    ASSERT_TRUE(resp.cache_hit);
  }
  EXPECT_EQ(obs::RegistryLookups(), before)
      << "cache-hit serving took a registry lock";
}

}  // namespace
}  // namespace maze::serve
