// Serving-layer tests: snapshot epochs, result-cache LRU accounting, canonical
// execution keys, dedup/cache byte-identity across all engines, deterministic
// admission control (rejection + deadline expiry), point/top-k extraction,
// report rendering, and the serve-script driver.
#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/check.h"

#include <gtest/gtest.h>

#include "bench_support/runner.h"
#include "core/datasets.h"
#include "obs/counters.h"
#include "obs/telemetry.h"
#include "rt/rank_exec.h"
#include "serve/bill.h"
#include "serve/cache.h"
#include "serve/script.h"
#include "serve/slo.h"
#include "serve/snapshot.h"
#include "obs/openmetrics.h"
#include "tests/json_checker.h"
#include "tests/openmetrics_checker.h"

namespace maze::serve {
namespace {

// Small stand-in graph shared by most tests; loading is deterministic, so two
// loads produce identical edge lists (the bump-reproducibility tests rely on
// this).
EdgeList TestGraph() {
  auto loaded = TryLoadGraphDataset("facebook", /*scale_adjust=*/-6);
  MAZE_CHECK(loaded.ok());
  return std::move(loaded).value();
}

// ---------------------------------------------------------------------------
// SnapshotRegistry

TEST(SnapshotRegistryTest, InstallAssignsEpochsPerName) {
  SnapshotRegistry registry;
  SnapshotPtr a1 = registry.Install("a", TestGraph());
  EXPECT_EQ(a1->name, "a");
  EXPECT_EQ(a1->epoch, 1u);
  SnapshotPtr b1 = registry.Install("b", TestGraph());
  EXPECT_EQ(b1->epoch, 1u);
  SnapshotPtr a2 = registry.Install("a", TestGraph());
  EXPECT_EQ(a2->epoch, 2u);

  auto got = registry.Get("a");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value()->epoch, 2u);
  // The old generation stays alive for holders of the shared_ptr.
  EXPECT_EQ(a1->epoch, 1u);
}

TEST(SnapshotRegistryTest, GetUnknownIsNotFound) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST(SnapshotRegistryTest, PrebuiltViewsMatchAlgorithmNeeds) {
  SnapshotRegistry registry;
  SnapshotPtr snap = registry.Install("g", TestGraph());
  EXPECT_GT(snap->directed.edges.size(), 0u);
  // Symmetrized view has both directions; oriented view only src < dst.
  EXPECT_GE(snap->symmetric.edges.size(), snap->directed.edges.size());
  for (const Edge& e : snap->oriented.edges) EXPECT_LT(e.src, e.dst);
  EXPECT_GT(snap->MemoryBytes(), 0u);
}

TEST(SnapshotRegistryTest, AllIsNameSorted) {
  SnapshotRegistry registry;
  registry.Install("zeta", TestGraph());
  registry.Install("alpha", TestGraph());
  auto all = registry.All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->name, "alpha");
  EXPECT_EQ(all[1]->name, "zeta");
}

// ---------------------------------------------------------------------------
// ResultCache

ExecResultPtr MakeResult(const std::string& payload) {
  auto r = std::make_shared<ExecResult>();
  r->payload = payload;
  return r;
}

TEST(ResultCacheTest, LookupHitAndMissAccounting) {
  ResultCache cache(1 << 20);
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  cache.Insert("k", MakeResult("v"));
  ExecResultPtr hit = cache.Lookup("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->payload, "v");
  auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Each entry costs 100 payload bytes; budget fits two.
  ResultCache cache(200);
  cache.Insert("a", MakeResult(std::string(100, 'a')));
  cache.Insert("b", MakeResult(std::string(100, 'b')));
  // Touch "a" so "b" is now least recently used.
  EXPECT_NE(cache.Lookup("a"), nullptr);
  cache.Insert("c", MakeResult(std::string(100, 'c')));
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr) << "LRU entry should have been evicted";
  EXPECT_NE(cache.Lookup("c"), nullptr);
  auto stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, 200u);
}

TEST(ResultCacheTest, OversizedResultIsNotCached) {
  ResultCache cache(50);
  cache.Insert("small", MakeResult(std::string(40, 's')));
  cache.Insert("huge", MakeResult(std::string(1000, 'h')));
  EXPECT_EQ(cache.Lookup("huge"), nullptr);
  // The resident entry survives: one oversized insert must not flush the cache.
  EXPECT_NE(cache.Lookup("small"), nullptr);
}

TEST(ResultCacheTest, InsertExistingKeyIsNoOp) {
  ResultCache cache(1 << 20);
  cache.Insert("k", MakeResult("first"));
  cache.Insert("k", MakeResult("second"));
  EXPECT_EQ(cache.Lookup("k")->payload, "first");
  EXPECT_EQ(cache.GetStats().insertions, 1u);
}

// ---------------------------------------------------------------------------
// Canonical execution keys

class ExecKeyTest : public ::testing::Test {
 protected:
  ExecKeyTest() { snap_ = registry_.Install("g", TestGraph()); }
  SnapshotRegistry registry_;
  SnapshotPtr snap_;
};

TEST_F(ExecKeyTest, EmbedsEpochAlgoEngineAndConsumedParams) {
  Request r;
  r.snapshot = "g";
  r.algo = "pagerank";
  r.engine = "native";
  r.iterations = 7;
  auto key = Service::ExecKey(r, *snap_);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key.value(), "g@1/pagerank/native/ranks=1/iterations=7");

  r.algo = "bfs";
  r.source = 3;
  key = Service::ExecKey(r, *snap_);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key.value(), "g@1/bfs/native/ranks=1/source=3");

  // Params an algorithm does not consume are excluded.
  r.algo = "cc";
  key = Service::ExecKey(r, *snap_);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key.value(), "g@1/cc/native/ranks=1");
}

TEST_F(ExecKeyTest, EpochBumpChangesKey) {
  Request r;
  r.snapshot = "g";
  auto k1 = Service::ExecKey(r, *snap_);
  SnapshotPtr bumped = registry_.Install("g", TestGraph());
  auto k2 = Service::ExecKey(r, *bumped);
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k2.ok());
  EXPECT_NE(k1.value(), k2.value());
}

TEST_F(ExecKeyTest, QueryKindSharesTheRunsKey) {
  Request run;
  run.snapshot = "g";
  Request point = run;
  point.kind = QueryKind::kPoint;
  point.vertex = 5;
  Request topk = run;
  topk.kind = QueryKind::kTopK;
  topk.k = 3;
  auto kr = Service::ExecKey(run, *snap_);
  auto kp = Service::ExecKey(point, *snap_);
  auto kt = Service::ExecKey(topk, *snap_);
  ASSERT_TRUE(kr.ok());
  ASSERT_TRUE(kp.ok());
  ASSERT_TRUE(kt.ok());
  EXPECT_EQ(kr.value(), kp.value());
  EXPECT_EQ(kr.value(), kt.value());
}

TEST_F(ExecKeyTest, FaultSpecIsValidatedAndKeyed) {
  Request r;
  r.snapshot = "g";
  r.algo = "pagerank";
  r.engine = "native";
  r.iterations = 3;
  r.faults = "seed=7,straggle=0x64";
  auto key = Service::ExecKey(r, *snap_);
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  EXPECT_EQ(key.value(),
            "g@1/pagerank/native/ranks=1/iterations=3/"
            "faults=seed=7,straggle=0x64");

  r.faults = "bogus=1";
  EXPECT_EQ(Service::ExecKey(r, *snap_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExecKeyTest, RejectsInvalidRequests) {
  Request r;
  r.snapshot = "g";
  r.algo = "sssp";
  EXPECT_EQ(Service::ExecKey(r, *snap_).status().code(),
            StatusCode::kInvalidArgument);
  r.algo = "pagerank";
  r.engine = "spark";
  EXPECT_EQ(Service::ExecKey(r, *snap_).status().code(),
            StatusCode::kInvalidArgument);
  r.engine = "native";
  r.iterations = 0;
  EXPECT_EQ(Service::ExecKey(r, *snap_).status().code(),
            StatusCode::kInvalidArgument);
  r.iterations = 10;
  r.algo = "bfs";
  r.source = static_cast<VertexId>(snap_->directed.num_vertices);
  EXPECT_EQ(Service::ExecKey(r, *snap_).status().code(),
            StatusCode::kInvalidArgument);
  r.source = 0;
  r.kind = QueryKind::kPoint;
  r.vertex = static_cast<VertexId>(snap_->directed.num_vertices);
  EXPECT_EQ(Service::ExecKey(r, *snap_).status().code(),
            StatusCode::kInvalidArgument);
  r.kind = QueryKind::kTopK;
  r.k = 0;
  EXPECT_EQ(Service::ExecKey(r, *snap_).status().code(),
            StatusCode::kInvalidArgument);
  // Triangles has no per-vertex answer to extract from.
  r = Request{};
  r.snapshot = "g";
  r.algo = "triangles";
  r.kind = QueryKind::kPoint;
  EXPECT_EQ(Service::ExecKey(r, *snap_).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Service: dedup + cache byte-identity across every engine

Request PageRankRequest(const std::string& engine) {
  Request r;
  r.snapshot = "g";
  r.algo = "pagerank";
  r.engine = engine;
  r.iterations = 3;
  return r;
}

// N concurrent identical requests produce byte-identical payloads from exactly
// one underlying execution — for every engine. This is the core serving-layer
// correctness claim: dedup and caching are invisible to the client.
TEST(ServiceDedupTest, ConcurrentIdenticalRequestsShareOneExecution) {
  constexpr int kCopies = 6;
  for (bench::EngineKind kind : bench::AllEngines()) {
    const std::string engine = bench::EngineName(kind);
    SCOPED_TRACE(engine);

    // Reference payload from an isolated solo run.
    std::string expected;
    {
      Service solo;
      solo.registry().Install("g", TestGraph());
      Response r = solo.Call(PageRankRequest(engine));
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      expected = r.payload;
      ASSERT_FALSE(expected.empty());
    }

    Service service;
    service.registry().Install("g", TestGraph());
    // Pause dispatch so all copies are submitted before any executes: the
    // first admits a flight, the rest must join it.
    service.Pause();
    std::vector<std::shared_future<Response>> futures;
    for (int i = 0; i < kCopies; ++i) {
      futures.push_back(service.Submit(PageRankRequest(engine)));
    }
    service.Resume();
    service.Drain();

    int deduped = 0;
    for (auto& f : futures) {
      Response r = f.get();
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      EXPECT_EQ(r.payload, expected) << "payload must be byte-identical";
      EXPECT_FALSE(r.cache_hit);
      deduped += r.deduped;
    }
    EXPECT_EQ(deduped, kCopies - 1);

    ServiceStats stats = service.Stats();
    EXPECT_EQ(stats.executed, 1u) << "exactly one underlying execution";
    EXPECT_EQ(stats.admitted, 1u);
    EXPECT_EQ(stats.dedup_joined, static_cast<uint64_t>(kCopies - 1));
    EXPECT_EQ(stats.completed, static_cast<uint64_t>(kCopies));
  }
}

TEST(ServiceCacheTest, RepeatAfterCompletionIsCacheHitWithIdenticalBytes) {
  Service service;
  service.registry().Install("g", TestGraph());
  Response first = service.Call(PageRankRequest("native"));
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);

  Response second = service.Call(PageRankRequest("native"));
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.payload, first.payload);
  EXPECT_EQ(second.queue_seconds, 0.0);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(ServiceCacheTest, EpochBumpInvalidatesCachedResults) {
  Service service;
  service.registry().Install("g", TestGraph());
  Response first = service.Call(PageRankRequest("native"));
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.epoch, 1u);

  service.registry().Install("g", TestGraph());  // Bump to epoch 2.
  Response second = service.Call(PageRankRequest("native"));
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(second.cache_hit) << "bumped epoch must miss the cache";
  EXPECT_EQ(second.epoch, 2u);
  // Same deterministic source: the answer itself is unchanged.
  EXPECT_EQ(second.payload, first.payload);
  EXPECT_EQ(service.Stats().executed, 2u);
}

// A straggler fault plan dilates the modeled clock without perturbing the
// answer, and the spec is part of the execution key (no cache aliasing with
// the clean run).
TEST(ServiceFaultTest, StragglerFaultsDilateModeledTimeNotPayload) {
  Service service;
  service.registry().Install("g", TestGraph());
  Response clean = service.Call(PageRankRequest("native"));
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();

  Request faulted_req = PageRankRequest("native");
  faulted_req.faults = "seed=7,straggle=0x64";
  Response faulted = service.Call(faulted_req);
  ASSERT_TRUE(faulted.status.ok()) << faulted.status.ToString();
  EXPECT_FALSE(faulted.cache_hit) << "fault spec must be part of the exec key";
  EXPECT_EQ(faulted.payload, clean.payload)
      << "faults may only change modeled time, never the answer";
  EXPECT_GT(faulted.modeled_seconds, clean.modeled_seconds);
  EXPECT_EQ(service.Stats().executed, 2u);
}

// ---------------------------------------------------------------------------
// Admission control

TEST(ServiceAdmissionTest, QueueFullRejectsWithUnavailable) {
  ServiceOptions options;
  options.queue_depth = 2;
  Service service(options);
  service.registry().Install("g", TestGraph());
  service.Pause();

  // Distinct keys so nothing dedups: with dispatch paused, submissions past
  // the bound must be rejected.
  std::vector<std::shared_future<Response>> admitted;
  for (int it = 1; it <= 2; ++it) {
    Request r = PageRankRequest("native");
    r.iterations = it;
    admitted.push_back(service.Submit(r));
  }
  Request third = PageRankRequest("native");
  third.iterations = 3;
  Response rejected = service.Submit(third).get();
  EXPECT_EQ(rejected.status.code(), StatusCode::kUnavailable);

  service.Resume();
  service.Drain();
  for (auto& f : admitted) EXPECT_TRUE(f.get().status.ok());

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.queue_peak, 2u);
}

TEST(ServiceAdmissionTest, ExpiredDeadlineAnswersDeadlineExceeded) {
  Service service;
  service.registry().Install("g", TestGraph());
  service.Pause();
  Request r = PageRankRequest("native");
  r.deadline_seconds = 1e-4;
  auto expired = service.Submit(r);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.Resume();
  service.Drain();
  EXPECT_EQ(expired.get().status.code(), StatusCode::kDeadlineExceeded);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.executed, 0u) << "expired flights must not execute";
}

TEST(ServiceAdmissionTest, FlightSurvivesIfAnyJoinerStillHasBudget) {
  Service service;
  service.registry().Install("g", TestGraph());
  service.Pause();
  Request tight = PageRankRequest("native");
  tight.deadline_seconds = 1e-4;
  auto f_tight = service.Submit(tight);
  Request lax = PageRankRequest("native");  // Same key, no deadline: joins.
  auto f_lax = service.Submit(lax);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.Resume();
  service.Drain();
  // One joiner still in budget → the flight executes and everyone is served.
  EXPECT_TRUE(f_tight.get().status.ok());
  EXPECT_TRUE(f_lax.get().status.ok());
  EXPECT_EQ(service.Stats().executed, 1u);
}

TEST(ServiceAdmissionTest, InvalidRequestsFailFastWithoutAdmission) {
  Service service;
  service.registry().Install("g", TestGraph());
  Request unknown_snap = PageRankRequest("native");
  unknown_snap.snapshot = "ghost";
  EXPECT_EQ(service.Call(unknown_snap).status.code(), StatusCode::kNotFound);
  Request bad_algo = PageRankRequest("native");
  bad_algo.algo = "sssp";
  EXPECT_EQ(service.Call(bad_algo).status.code(),
            StatusCode::kInvalidArgument);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.invalid, 2u);
  EXPECT_EQ(stats.admitted, 0u);
}

// After Drain, every submission is accounted for exactly once on both axes.
TEST(ServiceAdmissionTest, AccountingIdentityHoldsAfterDrain) {
  ServiceOptions options;
  options.queue_depth = 4;
  Service service(options);
  service.registry().Install("g", TestGraph());
  service.Pause();
  std::vector<std::shared_future<Response>> futures;
  for (int i = 0; i < 12; ++i) {
    Request r = PageRankRequest("native");
    r.iterations = 1 + (i % 6);  // Mix of duplicate and distinct keys.
    futures.push_back(service.Submit(r));
  }
  Request invalid = PageRankRequest("native");
  invalid.snapshot = "ghost";
  futures.push_back(service.Submit(invalid));
  service.Resume();
  service.Drain();
  for (auto& f : futures) f.wait();

  ServiceStats s = service.Stats();
  EXPECT_EQ(s.submitted, 13u);
  EXPECT_EQ(s.submitted, s.completed + s.failed + s.expired + s.rejected +
                             s.invalid);
  EXPECT_EQ(s.submitted,
            s.admitted + s.dedup_joined + s.cache_hits + s.rejected +
                s.invalid);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.inflight, 0u);
}

// ---------------------------------------------------------------------------
// Graceful degradation

TEST(ServiceDegradationTest, LevelTwoShedsMissesButServesHits) {
  Service service;
  service.registry().Install("g", TestGraph());
  ASSERT_TRUE(service.Call(PageRankRequest("native")).status.ok());

  service.SetDegradation(2);
  EXPECT_EQ(service.degradation(), 2);

  // The warm key rides the cache; a fresh key is shed.
  Response hit = service.Call(PageRankRequest("native"));
  EXPECT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cache_hit);
  Request miss = PageRankRequest("native");
  miss.iterations = 9;
  Response shed = service.Call(miss);
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.shed, 1u) << "degradation rejections are counted as shed";
  EXPECT_EQ(stats.cache_hits, 1u);

  // Recovery restores new executions; clamping bounds the level.
  service.SetDegradation(0);
  EXPECT_TRUE(service.Call(miss).status.ok());
  service.SetDegradation(7);
  EXPECT_EQ(service.degradation(), 2);
  service.SetDegradation(-3);
  EXPECT_EQ(service.degradation(), 0);
}

TEST(ServiceDegradationTest, LevelOneHalvesEffectiveQueueDepth) {
  ServiceOptions options;
  options.queue_depth = 4;
  Service service(options);
  service.registry().Install("g", TestGraph());
  service.SetDegradation(1);
  service.Pause();

  std::vector<std::shared_future<Response>> futures;
  for (int it = 1; it <= 3; ++it) {
    Request r = PageRankRequest("native");
    r.iterations = it;
    futures.push_back(service.Submit(r));
  }
  service.Resume();
  service.Drain();

  // Effective depth 4 >> 1 = 2: the third submission bounces, and because the
  // full-depth queue would have admitted it, it counts as shed.
  int ok = 0, unavailable = 0;
  for (auto& f : futures) {
    Response r = f.get();
    (r.status.ok() ? ok : unavailable) += 1;
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(unavailable, 1);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.shed, 1u);
}

// ---------------------------------------------------------------------------
// Request ids (trace correlation)

TEST(ServiceRequestIdTest, ResponsesCarryMonotonicRequestIds) {
  Service service;
  service.registry().Install("g", TestGraph());
  Response first = service.Call(PageRankRequest("native"));
  Response second = service.Call(PageRankRequest("native"));  // Cache hit.
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(first.request_id, 1u);
  EXPECT_EQ(second.request_id, 2u);
  EXPECT_TRUE(second.cache_hit);
}

// ---------------------------------------------------------------------------
// SLO watchdog

TEST(SloWatchdogTest, TripsShedsAndRecoversHysteretically) {
  // The watchdog reads process-global serve.* counters through telemetry
  // deltas; reset so this test's windows are self-contained.
  obs::ResetCountersAndHistograms();
  Service service;
  service.registry().Install("g", TestGraph());
  obs::TelemetryRegistry telemetry;
  telemetry.ScrapeOnce();  // Baseline window before arming.

  SloOptions slo;
  slo.p99_target_ms = 1e-3;  // 1 us: every real execution exceeds it.
  slo.burn_threshold = 2.0;
  slo.error_budget = 0.01;
  slo.recover_windows = 2;
  std::ostringstream log;
  SloWatchdog watchdog(slo, &telemetry, &service, &log);
  EXPECT_EQ(service.slo_target_us(), 1u);

  // Three over-target executions: burn = (3/3)/0.01 = 100 >= 2x threshold,
  // so the watchdog jumps straight to level 2.
  for (int it = 1; it <= 3; ++it) {
    Request r = PageRankRequest("native");
    r.iterations = it;
    ASSERT_TRUE(service.Call(r).status.ok());
  }
  telemetry.ScrapeOnce();
  EXPECT_EQ(watchdog.level(), 2) << log.str();
  EXPECT_EQ(service.degradation(), 2);

  // Degraded: fresh keys shed, warm keys still served from cache (and cache
  // hits do not burn budget, so the service can recover).
  Request miss = PageRankRequest("native");
  miss.iterations = 9;
  EXPECT_EQ(service.Call(miss).status.code(), StatusCode::kUnavailable);
  Request hit = PageRankRequest("native");
  hit.iterations = 1;
  EXPECT_TRUE(service.Call(hit).status.ok());

  // Idle windows count as healthy: recover_windows per level step-down.
  telemetry.ScrapeOnce();  // Cache-hit-only window: idle for SLO purposes.
  EXPECT_EQ(watchdog.level(), 2);
  telemetry.ScrapeOnce();
  EXPECT_EQ(watchdog.level(), 1);
  telemetry.ScrapeOnce();
  telemetry.ScrapeOnce();
  EXPECT_EQ(watchdog.level(), 0);
  EXPECT_EQ(service.degradation(), 0);

  // One degrade event, two recover events, all valid one-line JSON.
  auto events = watchdog.EventLines();
  ASSERT_EQ(events.size(), 3u) << log.str();
  EXPECT_NE(events[0].find("\"event\":\"slo_degrade\""), std::string::npos);
  EXPECT_NE(events[1].find("\"event\":\"slo_recover\""), std::string::npos);
  EXPECT_NE(events[2].find("\"event\":\"slo_recover\""), std::string::npos);
  for (const std::string& e : events) {
    EXPECT_TRUE(testutil::JsonChecker(e).Valid()) << e;
  }
  EXPECT_EQ(watchdog.windows_evaluated(), 5u);
}

TEST(SloWatchdogTest, DisarmsOnDestruction) {
  Service service;
  service.registry().Install("g", TestGraph());
  obs::TelemetryRegistry telemetry;
  {
    SloOptions slo;
    SloWatchdog watchdog(slo, &telemetry, &service, nullptr);
    service.SetDegradation(2);
    EXPECT_GT(service.slo_target_us(), 0u);
  }
  EXPECT_EQ(service.slo_target_us(), 0u);
  EXPECT_EQ(service.degradation(), 0);
}

// ---------------------------------------------------------------------------
// Point and top-k extraction

TEST(ServiceQueryTest, PointAndTopKExtractFromTheFullRun) {
  Service service;
  service.registry().Install("g", TestGraph());
  Request run = PageRankRequest("native");
  Response full = service.Call(run);
  ASSERT_TRUE(full.status.ok());

  // Payload: header line then one value per vertex.
  std::vector<std::string> lines;
  std::istringstream in(full.payload);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_GT(lines.size(), 8u);

  Request point = run;
  point.kind = QueryKind::kPoint;
  point.vertex = 7;
  Response pr = service.Call(point);
  ASSERT_TRUE(pr.status.ok());
  EXPECT_TRUE(pr.cache_hit) << "point query must reuse the run's execution";
  // lines[0] is the header; vertex v's value is lines[1 + v].
  EXPECT_EQ(pr.payload, "pagerank vertex 7 = " + lines[1 + 7] + "\n");

  Request topk = run;
  topk.kind = QueryKind::kTopK;
  topk.k = 5;
  Response tr = service.Call(topk);
  ASSERT_TRUE(tr.status.ok());
  EXPECT_TRUE(tr.cache_hit);
  std::istringstream tin(tr.payload);
  std::string header;
  std::getline(tin, header);
  EXPECT_EQ(header, "pagerank top 5");
  double prev = std::numeric_limits<double>::infinity();
  int rows = 0;
  for (std::string line; std::getline(tin, line);) {
    std::istringstream row(line);
    uint64_t vertex;
    double value;
    ASSERT_TRUE(row >> vertex >> value) << line;
    EXPECT_LE(value, prev) << "top-k must be sorted descending";
    prev = value;
    ++rows;
  }
  EXPECT_EQ(rows, 5);
  EXPECT_EQ(service.Stats().executed, 1u)
      << "run, point, and top-k share one execution";
}

// ---------------------------------------------------------------------------
// Report rendering

TEST(ServiceReportTest, JsonIsWellFormedAndMarkdownHasCounters) {
  Service service;
  service.registry().Install("g", TestGraph());
  service.Call(PageRankRequest("native"));
  service.Call(PageRankRequest("native"));  // One hit.
  ServiceReport report = service.Report();
  EXPECT_TRUE(testutil::JsonChecker(report.ToJson()).Valid())
      << report.ToJson();
  std::string md = report.ToMarkdown();
  EXPECT_NE(md.find("cache hits"), std::string::npos);
  EXPECT_NE(md.find("| g |"), std::string::npos) << md;
  ASSERT_EQ(report.snapshots.size(), 1u);
  EXPECT_EQ(report.snapshots[0].name, "g");
  EXPECT_EQ(report.stats.cache_hits, 1u);
}

// ---------------------------------------------------------------------------
// Script driver

TEST(ServeScriptTest, EndToEndScriptRunsAndReports) {
  std::istringstream script(R"(
# comment-only line
load g dataset=facebook scale_adjust=-6
pause
run algo=pagerank engine=native snapshot=g iterations=3 repeat=3
resume
wait
run algo=pagerank engine=native snapshot=g iterations=3
bump g
run algo=pagerank engine=native snapshot=g iterations=3
wait
report
)");
  ScriptOptions options;
  std::ostringstream out;
  ServiceReport report;
  Status s = RunServeScript(script, options, out, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  const std::string text = out.str();
  EXPECT_NE(text.find("load g: epoch 1"), std::string::npos) << text;
  EXPECT_NE(text.find("bump g: epoch 2"), std::string::npos) << text;
  // Global submission-order numbering across wait blocks: 3 (repeat) + 1
  // (cache hit) + 1 (post-bump) = 5 responses.
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(text.find("[" + std::to_string(i) + "] ok"), std::string::npos)
        << "missing response line " << i << " in:\n" << text;
  }
  EXPECT_NE(text.find("hit=1"), std::string::npos) << text;
  EXPECT_NE(text.find("# Service report"), std::string::npos);
  EXPECT_EQ(report.stats.submitted, 5u);
  EXPECT_EQ(report.stats.executed, 2u) << "dedup + cache leave 2 executions";
}

TEST(ServeScriptTest, SloScrapeAndDegradeCommands) {
  obs::ResetCountersAndHistograms();
  std::istringstream script(R"(
load g dataset=facebook scale_adjust=-6
slo target_ms=0.001 burn=2 budget=0.01 recover=1 min=1
degrade 1
degrade 0
run algo=pagerank engine=native snapshot=g iterations=3
wait
scrape
scrape
scrape
report
)");
  ScriptOptions options;
  std::ostringstream out;
  ServiceReport report;
  Status s = RunServeScript(script, options, out, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  const std::string text = out.str();
  EXPECT_NE(text.find("slo armed target_ms=0.001 burn=2 budget=0.01"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("degrade level=1"), std::string::npos) << text;
  EXPECT_NE(text.find("degrade level=0"), std::string::npos) << text;
  for (int i = 1; i <= 3; ++i) {
    EXPECT_NE(text.find("scrape " + std::to_string(i)), std::string::npos)
        << text;
  }
  // One over-target execution in window 1 trips the watchdog to level 2
  // (burn = 100); the two idle windows then step it back down (recover=1).
  EXPECT_EQ(testutil::CountOccurrences(text, "\"event\":\"slo_degrade\""), 1u)
      << text;
  EXPECT_EQ(testutil::CountOccurrences(text, "\"event\":\"slo_recover\""), 2u)
      << text;
  // The watchdog hook runs inside the scrape, so its event precedes the
  // script's own "scrape 1" line.
  EXPECT_LT(text.find("\"event\":\"slo_degrade\""), text.find("scrape 1"));
  EXPECT_NE(text.find("shed (SLO degradation)"), std::string::npos) << text;
  EXPECT_EQ(report.degradation, 0);
}

TEST(ServeScriptTest, UnknownSloParameterIsAScriptError) {
  ScriptOptions options;
  std::ostringstream out;
  {
    std::istringstream script("slo burn=2\n");  // Missing target_ms.
    Status s = RunServeScript(script, options, out);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
  {
    std::istringstream script("slo target_ms=5 frob=1\n");
    Status s = RunServeScript(script, options, out);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(s.message().find("frob"), std::string::npos);
  }
  {
    std::istringstream script("degrade nope\n");
    Status s = RunServeScript(script, options, out);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
}

TEST(ServeScriptTest, ScriptErrorsAreReportedWithLineNumbers) {
  ScriptOptions options;
  std::ostringstream out;
  {
    std::istringstream script("frobnicate g\n");
    Status s = RunServeScript(script, options, out);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(s.message().find("line 1"), std::string::npos) << s.ToString();
  }
  {
    // Submitting against a never-loaded snapshot is a request-level failure,
    // not a script error: the response line carries the status.
    std::istringstream script(
        "run algo=pagerank engine=native snapshot=ghost\nwait\n");
    std::ostringstream out2;
    Status s = RunServeScript(script, options, out2);
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_NE(out2.str().find("NOT_FOUND"), std::string::npos) << out2.str();
  }
  {
    // Load failures become script errors carrying the loader's status text.
    std::istringstream script("load g dataset=ghost\n");
    Status s = RunServeScript(script, options, out);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(s.message().find("NOT_FOUND"), std::string::npos)
        << s.ToString();
  }
}

// ---------------------------------------------------------------------------
// Service-level gauges

// queue depth, inflight, and SLO degradation export as OpenMetrics gauges:
// instantaneous levels the scraper samples, not monotone counters.
TEST(ServiceGaugeTest, ServiceLevelsExportAsGauges) {
  obs::ResetCountersAndHistograms();
  ServiceOptions options;
  options.queue_depth = 8;
  Service service(options);
  service.registry().Install("g", TestGraph());
  obs::TelemetryRegistry telemetry;

  service.Pause();
  std::vector<std::shared_future<Response>> futures;
  for (int it = 1; it <= 3; ++it) {
    Request r = PageRankRequest("native");
    r.iterations = it;
    futures.push_back(service.Submit(r));
  }
  service.SetDegradation(2);  // After the submits: level 2 sheds fresh keys.
  telemetry.ScrapeOnce();
  auto depth = telemetry.LatestGauge("serve.queue_depth");
  auto degradation = telemetry.LatestGauge("serve.degradation");
  ASSERT_TRUE(depth.has_value());
  ASSERT_TRUE(degradation.has_value());
  EXPECT_EQ(depth->value, 3);
  EXPECT_EQ(degradation->value, 2);

  service.SetDegradation(0);
  service.Resume();
  service.Drain();
  for (auto& f : futures) f.wait();
  telemetry.ScrapeOnce();
  depth = telemetry.LatestGauge("serve.queue_depth");
  auto inflight = telemetry.LatestGauge("serve.inflight");
  degradation = telemetry.LatestGauge("serve.degradation");
  ASSERT_TRUE(depth.has_value());
  ASSERT_TRUE(inflight.has_value());
  EXPECT_EQ(depth->value, 0);
  EXPECT_EQ(depth->delta, -3) << "gauge deltas are signed";
  EXPECT_EQ(inflight->value, 0);
  EXPECT_EQ(degradation->value, 0);

  // And the exposition carries them as gauge families.
  std::string text = obs::OpenMetricsText(telemetry);
  testutil::OpenMetricsChecker checker(text);
  ASSERT_TRUE(checker.Valid()) << checker.error();
  EXPECT_EQ(checker.gauges().count("maze_serve_queue_depth"), 1u);
  EXPECT_EQ(checker.gauges().count("maze_serve_inflight"), 1u);
  EXPECT_EQ(checker.gauges().count("maze_serve_degradation"), 1u);
}

// ---------------------------------------------------------------------------
// Query bills (per-request resource attribution)

TEST(BillMathTest, IntegerShareIsAnExactPartition) {
  for (uint64_t v : {0ull, 1ull, 7ull, 100ull, 12345ull}) {
    for (size_t n : {1, 2, 3, 7}) {
      uint64_t sum = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t share = IntegerShare(v, i, n);
        EXPECT_LE(share, v / n + 1);
        sum += share;
      }
      EXPECT_EQ(sum, v) << "v=" << v << " n=" << n;
    }
  }
}

TEST(BillMathTest, CostGreaterOrdersByCanonThenWireThenId) {
  QueryBill cheap, dear, tied;
  cheap.request_id = 1;
  cheap.canon_modeled_seconds = 0.5;
  dear.request_id = 2;
  dear.canon_modeled_seconds = 1.5;
  tied.request_id = 3;
  tied.canon_modeled_seconds = 1.5;
  tied.wire_bytes = 10;
  EXPECT_TRUE(CostGreater(dear, cheap));
  EXPECT_FALSE(CostGreater(cheap, dear));
  EXPECT_TRUE(CostGreater(tied, dear)) << "wire bytes break the tie";
  // Full tie: lower request id ranks first (deterministic order).
  QueryBill dup = dear;
  dup.request_id = 9;
  EXPECT_TRUE(CostGreater(dear, dup));
  EXPECT_FALSE(CostGreater(dup, dear));

  std::vector<QueryBill> top = TopCostRanked({cheap, dear, tied}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].request_id, 3u);
  EXPECT_EQ(top[1].request_id, 2u);
}

TEST(FlightRecorderTest, RingKeepsLastCapacityWithSequenceWindows) {
  FlightRecorder recorder(3);
  EXPECT_EQ(recorder.next_seq(), 0u);
  for (uint64_t i = 0; i < 5; ++i) {
    QueryBill b;
    b.request_id = 100 + i;
    b.canon_modeled_seconds = static_cast<double>(i);
    EXPECT_EQ(recorder.Push(b), i);
  }
  EXPECT_EQ(recorder.next_seq(), 5u);
  auto held = recorder.Snapshot();
  ASSERT_EQ(held.size(), 3u) << "capacity bounds the ring";
  EXPECT_EQ(held[0].request_id, 102u);
  EXPECT_EQ(held[2].request_id, 104u);
  // Since() clamps to the oldest held sequence.
  EXPECT_EQ(recorder.Since(4).size(), 1u);
  EXPECT_EQ(recorder.Since(0).size(), 3u);
  EXPECT_EQ(recorder.Since(5).size(), 0u);
  auto top = recorder.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].request_id, 104u);
}

// Every OK response carries a bill; a sole fresh execution is billed the
// whole flight and the ledger conserves.
TEST(ServiceBillTest, FreshCallIsBilledTheWholeFlight) {
  Service service;
  service.registry().Install("g", TestGraph());
  Response r = service.Call(PageRankRequest("native"));
  ASSERT_TRUE(r.status.ok());
  service.Drain();
  ASSERT_NE(r.bill, nullptr);
  EXPECT_EQ(r.bill->request_id, r.request_id);
  EXPECT_EQ(r.bill->path, BillPath::kFresh);
  EXPECT_EQ(r.bill->share_count, 1);
  ASSERT_NE(r.bill->flight, nullptr);
  const FlightCost& flight = *r.bill->flight;
  EXPECT_GT(flight.modeled_seconds, 0.0);
  EXPECT_GT(flight.canon_modeled_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.bill->modeled_seconds, flight.modeled_seconds);
  EXPECT_EQ(r.bill->wire_bytes, flight.wire_bytes);
  EXPECT_EQ(r.bill->messages, flight.messages);
  // The measured decomposition sums back to the modeled total.
  EXPECT_NEAR(flight.compute_seconds + flight.wire_seconds +
                  flight.imbalance_seconds + flight.fault_seconds,
              flight.modeled_seconds, 1e-9 * flight.modeled_seconds);
  EXPECT_NEAR(flight.canon_compute_seconds + flight.canon_wire_seconds +
                  flight.canon_imbalance_seconds + flight.canon_fault_seconds,
              flight.canon_modeled_seconds,
              1e-9 * flight.canon_modeled_seconds);

  BillLedger ledger = service.Bills();
  EXPECT_EQ(ledger.flights.entries, 1u);
  EXPECT_EQ(ledger.billed.entries, 1u);
  EXPECT_TRUE(BillsConserve(ledger.flights, ledger.billed));
}

// Dedup joiners split one flight N ways: integers exactly, seconds evenly.
TEST(ServiceBillTest, DedupJoinersSplitTheFlightExactly) {
  constexpr int kCopies = 5;
  Service service;
  service.registry().Install("g", TestGraph());
  service.Pause();
  std::vector<std::shared_future<Response>> futures;
  for (int i = 0; i < kCopies; ++i) {
    futures.push_back(service.Submit(PageRankRequest("native")));
  }
  service.Resume();
  service.Drain();

  uint64_t wire_sum = 0, msg_sum = 0;
  double modeled_sum = 0;
  FlightCostPtr flight;
  for (auto& f : futures) {
    Response r = f.get();
    ASSERT_TRUE(r.status.ok());
    ASSERT_NE(r.bill, nullptr);
    EXPECT_EQ(r.bill->path, BillPath::kDedup);
    EXPECT_EQ(r.bill->share_count, kCopies);
    if (flight == nullptr) flight = r.bill->flight;
    EXPECT_EQ(r.bill->flight, flight) << "joiners share one FlightCost";
    wire_sum += r.bill->wire_bytes;
    msg_sum += r.bill->messages;
    modeled_sum += r.bill->modeled_seconds;
  }
  ASSERT_NE(flight, nullptr);
  EXPECT_EQ(wire_sum, flight->wire_bytes) << "integer split must be exact";
  EXPECT_EQ(msg_sum, flight->messages);
  EXPECT_NEAR(modeled_sum, flight->modeled_seconds,
              1e-9 * std::max(1.0, flight->modeled_seconds));

  BillLedger ledger = service.Bills();
  EXPECT_EQ(ledger.flights.entries, 1u);
  EXPECT_EQ(ledger.billed.entries, static_cast<uint64_t>(kCopies));
  EXPECT_TRUE(BillsConserve(ledger.flights, ledger.billed));
}

// Cache hits carry the originating flight for context at zero marginal cost;
// a fully-cached service adds nothing to the billed ledger side.
TEST(ServiceBillTest, CacheHitsAreZeroMarginal) {
  Service service;
  service.registry().Install("g", TestGraph());
  Response first = service.Call(PageRankRequest("native"));
  ASSERT_TRUE(first.status.ok());
  Response second = service.Call(PageRankRequest("native"));
  ASSERT_TRUE(second.status.ok());
  ASSERT_TRUE(second.cache_hit);
  service.Drain();

  ASSERT_NE(second.bill, nullptr);
  EXPECT_EQ(second.bill->path, BillPath::kCacheHit);
  EXPECT_EQ(second.bill->share_count, 0);
  EXPECT_EQ(second.bill->modeled_seconds, 0.0);
  EXPECT_EQ(second.bill->canon_modeled_seconds, 0.0);
  EXPECT_EQ(second.bill->wire_bytes, 0u);
  EXPECT_EQ(second.bill->messages, 0u);
  EXPECT_EQ(second.bill->flight, first.bill->flight)
      << "hit carries the originating execution's cost for context";

  BillLedger ledger = service.Bills();
  EXPECT_EQ(ledger.flights.entries, 1u);
  EXPECT_EQ(ledger.billed.entries, 2u) << "the hit is billed (at zero)";
  EXPECT_EQ(ledger.billed.wire_bytes, ledger.flights.wire_bytes);
  EXPECT_TRUE(BillsConserve(ledger.flights, ledger.billed));
}

// A faulted flight bills its fault time and injection counts, and still
// conserves.
TEST(ServiceBillTest, FaultedFlightBillsFaultTimeAndConserves) {
  Service service;
  service.registry().Install("g", TestGraph());
  Request clean_req = PageRankRequest("native");
  clean_req.ranks = 2;  // Drops need wire traffic, so run on two ranks.
  Response clean = service.Call(clean_req);
  ASSERT_TRUE(clean.status.ok());
  Request faulted_req = clean_req;
  faulted_req.faults = "seed=7,straggle=0x64,drop=0.4";
  Response faulted = service.Call(faulted_req);
  ASSERT_TRUE(faulted.status.ok());
  service.Drain();

  ASSERT_NE(faulted.bill, nullptr);
  EXPECT_GT(faulted.bill->fault_seconds, 0.0);
  EXPECT_GT(faulted.bill->flight->faults_injected, 0u);
  EXPECT_EQ(clean.bill->fault_seconds, 0.0);
  EXPECT_GT(faulted.bill->canon_modeled_seconds,
            clean.bill->canon_modeled_seconds)
      << "the straggler multiplier must surface in the canonical rank";

  BillLedger ledger = service.Bills();
  EXPECT_EQ(ledger.flights.entries, 2u);
  EXPECT_TRUE(BillsConserve(ledger.flights, ledger.billed));
  // The faulted query tops the deterministic cost ranking.
  auto top = service.TopBills(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].request_id, faulted.request_id);
}

// The conservation identity across every path at once — fresh, dedup, cache
// hit, invalid, and deadline-expired submissions in one mix.
TEST(ServiceBillTest, ConservationHoldsAcrossMixedPaths) {
  ServiceOptions options;
  options.queue_depth = 16;
  Service service(options);
  service.registry().Install("g", TestGraph());
  // A warm key for cache hits.
  ASSERT_TRUE(service.Call(PageRankRequest("native")).status.ok());

  service.Pause();
  std::vector<std::shared_future<Response>> futures;
  for (int i = 0; i < 12; ++i) {
    Request r = PageRankRequest("native");
    r.iterations = 1 + (i % 4);  // Duplicates dedup; iterations=3 hits cache.
    futures.push_back(service.Submit(r));
  }
  Request expired = PageRankRequest("native");
  expired.iterations = 9;
  expired.deadline_seconds = 1e-4;
  futures.push_back(service.Submit(expired));
  Request invalid = PageRankRequest("native");
  invalid.snapshot = "ghost";
  futures.push_back(service.Submit(invalid));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.Resume();
  service.Drain();
  for (auto& f : futures) f.wait();

  uint64_t billed_ok = 1;  // The warm-up call.
  for (auto& f : futures) {
    const Response& r = f.get();
    if (r.status.ok()) {
      ASSERT_NE(r.bill, nullptr) << "every OK response must carry a bill";
      ++billed_ok;
    } else {
      EXPECT_EQ(r.bill, nullptr) << "failed responses are not billed";
    }
  }
  BillLedger ledger = service.Bills();
  EXPECT_EQ(ledger.billed.entries, billed_ok);
  EXPECT_TRUE(BillsConserve(ledger.flights, ledger.billed))
      << "flights " << ledger.flights.ToJson() << " vs billed "
      << ledger.billed.ToJson();
}

// Canonical bill fields are byte-stable across the serial and rank-parallel
// schedules for the same request sequence (the measured fields are not).
TEST(ServiceBillTest, CanonicalBillsAreScheduleInvariant) {
  auto run_sequence = [] {
    Service service;
    service.registry().Install("g", TestGraph());
    std::vector<std::string> lines;
    for (int it : {3, 5}) {
      Request r = PageRankRequest("native");
      r.ranks = 2;
      r.iterations = it;
      Response resp = service.Call(r);
      EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
      if (resp.bill != nullptr) {
        lines.push_back(BillJson(*resp.bill, /*canonical_only=*/true));
      }
    }
    return lines;
  };
  rt::SetSerialRanks(1);
  auto serial = run_sequence();
  rt::SetSerialRanks(0);
  auto parallel = run_sequence();
  rt::SetSerialRanks(-1);
  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "bill " << i;
  }
}

TEST(ServiceBillTest, ReportRendersLedgerAndTopBills) {
  Service service;
  service.registry().Install("g", TestGraph());
  service.Call(PageRankRequest("native"));
  service.Call(PageRankRequest("native"));  // Cache hit.
  service.Drain();
  ServiceReport report = service.Report();
  EXPECT_TRUE(testutil::JsonChecker(report.ToJson()).Valid())
      << report.ToJson();
  EXPECT_NE(report.ToJson().find("\"bills\""), std::string::npos);
  EXPECT_NE(report.ToJson().find("\"conserved\": true"), std::string::npos)
      << report.ToJson();
  EXPECT_EQ(report.bills.flights.entries, 1u);
  EXPECT_EQ(report.bills.billed.entries, 2u);
  ASSERT_FALSE(report.top_bills.empty());
  EXPECT_EQ(report.top_bills[0].request_id, 1u)
      << "the fresh execution outranks its zero-cost cache hit";
  std::string md = report.ToMarkdown();
  EXPECT_NE(md.find("## Query bills"), std::string::npos) << md;
  EXPECT_NE(md.find("conserved=yes"), std::string::npos) << md;
}

TEST(ServeScriptTest, BillsCommandPrintsLedgerAndTopBills) {
  std::istringstream script(R"(
load g dataset=facebook scale_adjust=-6
run algo=pagerank engine=native snapshot=g iterations=3 repeat=2
run algo=pagerank engine=native snapshot=g iterations=5
wait
bills top=2
)");
  ScriptOptions options;
  std::ostringstream out;
  Status s = RunServeScript(script, options, out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  const std::string text = out.str();
  EXPECT_NE(text.find("conserved=yes"), std::string::npos) << text;
  EXPECT_NE(text.find("bill[0] {\"request_id\": "), std::string::npos) << text;
  EXPECT_NE(text.find("bill[1] "), std::string::npos) << text;
  EXPECT_EQ(text.find("bill[2] "), std::string::npos) << "top=2 bounds";
  // iterations=5 costs more than iterations=3 in the canonical rank.
  EXPECT_NE(text.find("iterations=5"), std::string::npos) << text;
  EXPECT_LT(text.find("iterations=5", text.find("bill[0]")),
            text.find("bill[1]"))
      << text;
  {
    std::istringstream bad("bills frob=1\n");
    std::ostringstream out2;
    EXPECT_EQ(RunServeScript(bad, options, out2).code(),
              StatusCode::kInvalidArgument);
  }
}

// An SLO escalation writes the forensic artifacts: a deterministic bills dump
// naming the top-cost request ids, and a Perfetto track of recent flights.
TEST(SloWatchdogTest, EscalationWritesForensicDump) {
  obs::ResetCountersAndHistograms();
  Service service;
  service.registry().Install("g", TestGraph());
  obs::TelemetryRegistry telemetry;
  telemetry.ScrapeOnce();  // Baseline window before arming.

  const std::string dump_path = "serve_test_slo_dump.json";
  const std::string trace_path = "serve_test_slo_flights.json";
  std::remove(dump_path.c_str());
  std::remove(trace_path.c_str());

  SloOptions slo;
  slo.p99_target_ms = 1e-3;  // Every real execution exceeds 1 us.
  slo.dump_path = dump_path;
  slo.perfetto_path = trace_path;
  slo.dump_top_k = 2;
  std::ostringstream log;
  SloWatchdog watchdog(slo, &telemetry, &service, &log);

  std::vector<uint64_t> ids;
  for (int it = 1; it <= 3; ++it) {
    Request r = PageRankRequest("native");
    r.iterations = it;
    Response resp = service.Call(r);
    ASSERT_TRUE(resp.status.ok());
    ids.push_back(resp.request_id);
  }
  telemetry.ScrapeOnce();
  ASSERT_EQ(watchdog.level(), 2) << log.str();

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "escalation must write the bills dump";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_TRUE(testutil::JsonChecker(dump).Valid()) << dump;
  EXPECT_NE(dump.find("\"event\": \"slo_trip\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"level\": 2"), std::string::npos);
  // The tripping window holds all three bills; the top array names the
  // heaviest request ids (iterations=3 then iterations=2).
  for (uint64_t id : ids) {
    EXPECT_NE(dump.find("\"request_id\": " + std::to_string(id)),
              std::string::npos)
        << dump;
  }
  size_t top_pos = dump.find("\"top\"");
  ASSERT_NE(top_pos, std::string::npos);
  EXPECT_LT(dump.find("\"request_id\": " + std::to_string(ids[2]), top_pos),
            dump.find("\"request_id\": " + std::to_string(ids[1]), top_pos))
      << "top array must rank the costliest query first:\n" << dump;
  // Wall-clock fields stay out of the deterministic artifact.
  EXPECT_EQ(dump.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(dump.find("cpu_seconds"), std::string::npos);

  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.good());
  std::stringstream tbuf;
  tbuf << trace.rdbuf();
  EXPECT_TRUE(testutil::JsonChecker(tbuf.str()).Valid()) << tbuf.str();
  EXPECT_NE(tbuf.str().find("query flights"), std::string::npos);

  std::remove(dump_path.c_str());
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace maze::serve
