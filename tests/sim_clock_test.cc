#include "rt/sim_clock.h"

#include <gtest/gtest.h>

namespace maze::rt {
namespace {

TEST(CommModelTest, TransferTimeComposesBandwidthAndLatency) {
  CommModel m{"test", 1e9, 1e-5};
  // 1 GB at 1 GB/s + 10 messages at 10us each.
  EXPECT_NEAR(m.TransferSeconds(1'000'000'000, 10), 1.0 + 1e-4, 1e-9);
}

TEST(CommModelTest, ProfilesAreOrderedLikeThePaper) {
  // Figure 6: MPI > multi-socket > socket > netty in achievable bandwidth.
  EXPECT_GT(CommModel::Mpi().bandwidth_bytes_per_sec,
            CommModel::MultiSocket().bandwidth_bytes_per_sec);
  EXPECT_GT(CommModel::MultiSocket().bandwidth_bytes_per_sec,
            CommModel::Socket().bandwidth_bytes_per_sec);
  EXPECT_GT(CommModel::Socket().bandwidth_bytes_per_sec,
            CommModel::Netty().bandwidth_bytes_per_sec);
}

TEST(SimClockTest, SingleRankNoCommCountsComputeOnly) {
  SimClock clock(1, CommModel::Mpi());
  clock.RecordCompute(0, 0.5);
  clock.EndStep();
  EXPECT_DOUBLE_EQ(clock.elapsed_seconds(), 0.5);
}

TEST(SimClockTest, StepTimeIsMaxOverRanks) {
  SimClock clock(3, CommModel::Mpi());
  clock.RecordCompute(0, 0.1);
  clock.RecordCompute(1, 0.7);
  clock.RecordCompute(2, 0.3);
  clock.EndStep();
  EXPECT_DOUBLE_EQ(clock.elapsed_seconds(), 0.7);
}

TEST(SimClockTest, CommChargedWithoutOverlap) {
  CommModel m{"test", 1e9, 0.0};
  SimClock clock(2, m);
  clock.RecordCompute(0, 0.2);
  clock.RecordSend(0, 1, 500'000'000);  // 0.5 s wire time.
  clock.EndStep(/*overlap_comm=*/false);
  EXPECT_NEAR(clock.elapsed_seconds(), 0.7, 1e-9);
}

TEST(SimClockTest, OverlapTakesMaxOfComputeAndComm) {
  CommModel m{"test", 1e9, 0.0};
  SimClock clock(2, m);
  clock.RecordCompute(0, 0.2);
  clock.RecordSend(0, 1, 500'000'000);
  clock.EndStep(/*overlap_comm=*/true);
  EXPECT_NEAR(clock.elapsed_seconds(), 0.5, 1e-9);
}

TEST(SimClockTest, SameRankTrafficIsFree) {
  SimClock clock(2, CommModel::Netty());
  clock.RecordSend(1, 1, 1'000'000'000, 100);
  clock.EndStep();
  EXPECT_DOUBLE_EQ(clock.elapsed_seconds(), 0.0);
  RunMetrics metrics = clock.Finish();
  EXPECT_EQ(metrics.bytes_sent, 0u);
}

TEST(SimClockTest, ComputeScaleModelsWorkerCaps) {
  SimClock clock(1, CommModel::Mpi());
  clock.RecordCompute(0, 0.1, /*scale=*/6.0);  // 4-of-24-workers handicap.
  clock.EndStep();
  EXPECT_NEAR(clock.elapsed_seconds(), 0.6, 1e-12);
}

TEST(SimClockTest, MetricsAggregateAcrossSteps) {
  CommModel m{"test", 1e9, 0.0};
  SimClock clock(2, m);
  for (int step = 0; step < 3; ++step) {
    clock.RecordCompute(0, 0.1);
    clock.RecordCompute(1, 0.1);
    clock.RecordSend(0, 1, 1'000'000, 2);
    clock.EndStep();
  }
  RunMetrics metrics = clock.Finish();
  EXPECT_EQ(metrics.bytes_sent, 3'000'000u);
  EXPECT_EQ(metrics.messages_sent, 6u);
  EXPECT_NEAR(metrics.total_compute_seconds, 0.6, 1e-9);
  EXPECT_GT(metrics.peak_network_bw, 0.0);
}

TEST(SimClockTest, PeakBandwidthReflectsLatencyBoundTraffic) {
  // Many small messages: achieved bandwidth collapses far below the line rate,
  // exactly the Giraph symptom of Figure 6.
  CommModel m{"test", 1e9, 1e-3};
  SimClock big(2, m);
  big.RecordSend(0, 1, 100'000'000, 1);
  big.EndStep();
  double bw_large = big.Finish().peak_network_bw;

  SimClock small(2, m);
  for (int i = 0; i < 1000; ++i) small.RecordSend(0, 1, 1'000, 1);
  small.EndStep();
  double bw_small = small.Finish().peak_network_bw;
  EXPECT_GT(bw_large, 10 * bw_small);
}

TEST(SimClockTest, CpuUtilizationComputedFromBusyFraction) {
  CommModel m{"test", 1e9, 0.0};
  SimClock clock(2, m);
  clock.RecordCompute(0, 1.0);
  clock.RecordCompute(1, 1.0);
  clock.EndStep();
  RunMetrics metrics = clock.Finish(/*intra_rank_utilization=*/0.5);
  // busy = 2.0 over 2 ranks x 1.0 s elapsed -> 1.0, scaled by 0.5.
  EXPECT_NEAR(metrics.cpu_utilization, 0.5, 1e-9);
}

TEST(SimClockTest, MemoryPeakKeepsMax) {
  SimClock clock(2, CommModel::Mpi());
  clock.RecordMemory(0, 100);
  clock.RecordMemory(1, 500);
  clock.RecordMemory(0, 300);
  EXPECT_EQ(clock.Finish().memory_peak_bytes, 500u);
}

}  // namespace
}  // namespace maze::rt
