#include "rt/sim_clock.h"

#include <gtest/gtest.h>

namespace maze::rt {
namespace {

TEST(CommModelTest, TransferTimeComposesBandwidthAndLatency) {
  CommModel m{"test", 1e9, 1e-5};
  // 1 GB at 1 GB/s + 10 messages at 10us each.
  EXPECT_NEAR(m.TransferSeconds(1'000'000'000, 10), 1.0 + 1e-4, 1e-9);
}

TEST(CommModelTest, ProfilesAreOrderedLikeThePaper) {
  // Figure 6: MPI > multi-socket > socket > netty in achievable bandwidth.
  EXPECT_GT(CommModel::Mpi().bandwidth_bytes_per_sec,
            CommModel::MultiSocket().bandwidth_bytes_per_sec);
  EXPECT_GT(CommModel::MultiSocket().bandwidth_bytes_per_sec,
            CommModel::Socket().bandwidth_bytes_per_sec);
  EXPECT_GT(CommModel::Socket().bandwidth_bytes_per_sec,
            CommModel::Netty().bandwidth_bytes_per_sec);
}

TEST(SimClockTest, SingleRankNoCommCountsComputeOnly) {
  SimClock clock(1, CommModel::Mpi());
  clock.RecordCompute(0, 0.5);
  clock.EndStep();
  EXPECT_DOUBLE_EQ(clock.elapsed_seconds(), 0.5);
}

TEST(SimClockTest, StepTimeIsMaxOverRanks) {
  SimClock clock(3, CommModel::Mpi());
  clock.RecordCompute(0, 0.1);
  clock.RecordCompute(1, 0.7);
  clock.RecordCompute(2, 0.3);
  clock.EndStep();
  EXPECT_DOUBLE_EQ(clock.elapsed_seconds(), 0.7);
}

TEST(SimClockTest, CommChargedWithoutOverlap) {
  CommModel m{"test", 1e9, 0.0};
  SimClock clock(2, m);
  clock.RecordCompute(0, 0.2);
  clock.RecordSend(0, 1, 500'000'000);  // 0.5 s wire time.
  clock.EndStep(/*overlap_comm=*/false);
  EXPECT_NEAR(clock.elapsed_seconds(), 0.7, 1e-9);
}

TEST(SimClockTest, OverlapTakesMaxOfComputeAndComm) {
  CommModel m{"test", 1e9, 0.0};
  SimClock clock(2, m);
  clock.RecordCompute(0, 0.2);
  clock.RecordSend(0, 1, 500'000'000);
  clock.EndStep(/*overlap_comm=*/true);
  EXPECT_NEAR(clock.elapsed_seconds(), 0.5, 1e-9);
}

TEST(SimClockTest, SameRankTrafficIsFree) {
  SimClock clock(2, CommModel::Netty());
  clock.RecordSend(1, 1, 1'000'000'000, 100);
  clock.EndStep();
  EXPECT_DOUBLE_EQ(clock.elapsed_seconds(), 0.0);
  RunMetrics metrics = clock.Finish();
  EXPECT_EQ(metrics.bytes_sent, 0u);
}

TEST(SimClockTest, ComputeScaleModelsWorkerCaps) {
  SimClock clock(1, CommModel::Mpi());
  clock.RecordCompute(0, 0.1, /*scale=*/6.0);  // 4-of-24-workers handicap.
  clock.EndStep();
  EXPECT_NEAR(clock.elapsed_seconds(), 0.6, 1e-12);
}

TEST(SimClockTest, MetricsAggregateAcrossSteps) {
  CommModel m{"test", 1e9, 0.0};
  SimClock clock(2, m);
  for (int step = 0; step < 3; ++step) {
    clock.RecordCompute(0, 0.1);
    clock.RecordCompute(1, 0.1);
    clock.RecordSend(0, 1, 1'000'000, 2);
    clock.EndStep();
  }
  RunMetrics metrics = clock.Finish();
  EXPECT_EQ(metrics.bytes_sent, 3'000'000u);
  EXPECT_EQ(metrics.messages_sent, 6u);
  EXPECT_NEAR(metrics.total_compute_seconds, 0.6, 1e-9);
  EXPECT_GT(metrics.peak_network_bw, 0.0);
}

TEST(SimClockTest, PeakBandwidthReflectsLatencyBoundTraffic) {
  // Many small messages: achieved bandwidth collapses far below the line rate,
  // exactly the Giraph symptom of Figure 6.
  CommModel m{"test", 1e9, 1e-3};
  SimClock big(2, m);
  big.RecordSend(0, 1, 100'000'000, 1);
  big.EndStep();
  double bw_large = big.Finish().peak_network_bw;

  SimClock small(2, m);
  for (int i = 0; i < 1000; ++i) small.RecordSend(0, 1, 1'000, 1);
  small.EndStep();
  double bw_small = small.Finish().peak_network_bw;
  EXPECT_GT(bw_large, 10 * bw_small);
}

TEST(SimClockTest, CpuUtilizationComputedFromBusyFraction) {
  CommModel m{"test", 1e9, 0.0};
  SimClock clock(2, m);
  clock.RecordCompute(0, 1.0);
  clock.RecordCompute(1, 1.0);
  clock.EndStep();
  RunMetrics metrics = clock.Finish(/*intra_rank_utilization=*/0.5);
  // busy = 2.0 over 2 ranks x 1.0 s elapsed -> 1.0, scaled by 0.5.
  EXPECT_NEAR(metrics.cpu_utilization, 0.5, 1e-9);
}

TEST(SimClockTest, TraceRecordsPerRankWireAndFaultBreakdowns) {
  CommModel m{"test", 1e9, 0.0};
  SimClock clock(2, m);
  clock.EnableTrace();
  clock.RecordCompute(0, 0.2);
  clock.RecordSend(0, 1, 500'000'000);  // 0.5 s wire time on rank 0.
  clock.ChargeRecovery(1, 0.25, 0, "restore");
  clock.EndStep();
  clock.Finish();

  ASSERT_EQ(clock.trace().size(), 1u);
  const StepRecord& s = clock.trace()[0];
  ASSERT_EQ(s.rank_wire_seconds.size(), 2u);
  ASSERT_EQ(s.rank_fault_seconds.size(), 2u);
  EXPECT_NEAR(s.rank_wire_seconds[0], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(s.rank_wire_seconds[1], 0.0);
  EXPECT_DOUBLE_EQ(s.rank_fault_seconds[0], 0.0);
  EXPECT_NEAR(s.rank_fault_seconds[1], 0.25, 1e-12);
  // Aggregates are the per-rank maxes.
  EXPECT_DOUBLE_EQ(s.wire_seconds, s.rank_wire_seconds[0]);
  EXPECT_DOUBLE_EQ(s.fault_seconds, s.rank_fault_seconds[1]);
}

// Regression: bytes recorded after the final EndStep (e.g. a result-gather
// phase the engine never barriers on) must land in a trailing zero-duration
// record so the utilization buckets partition bytes_sent unconditionally.
TEST(SimClockTest, LeftoverBytesLandInTrailingZeroDurationRecord) {
  CommModel m{"test", 1e9, 0.0};
  SimClock clock(2, m);
  clock.EnableTrace();
  clock.RecordCompute(0, 0.1);
  clock.RecordSend(0, 1, 1'000'000, 1);
  clock.EndStep();
  clock.RecordSend(1, 0, 2'000'000, 3);  // After the last barrier.
  RunMetrics metrics = clock.Finish();

  EXPECT_EQ(metrics.bytes_sent, 3'000'000u);
  ASSERT_EQ(metrics.steps.size(), 2u);
  const StepRecord& tail = metrics.steps[1];
  EXPECT_EQ(tail.bytes_sent, 2'000'000u);
  EXPECT_EQ(tail.messages_sent, 3u);
  // No simulated time was charged for the leftovers: elapsed stays at the
  // barriered step's 0.1 compute + 0.001 wire, and the trailing record
  // contributes zero seconds everywhere.
  EXPECT_DOUBLE_EQ(tail.StepSeconds(), 0.0);
  EXPECT_NEAR(metrics.elapsed_seconds, 0.101, 1e-12);
  ASSERT_EQ(tail.rank_bytes.size(), 2u);
  EXPECT_EQ(tail.rank_bytes[1], 2'000'000u);

  // The whole point: bucket bytes now sum to bytes_sent exactly.
  uint64_t bucket_bytes = 0;
  for (const UtilizationBucket& b : UtilizationTimeline(metrics)) {
    bucket_bytes += b.bytes;
  }
  EXPECT_EQ(bucket_bytes, metrics.bytes_sent);
}

TEST(SimClockTest, NoTrailingRecordWhenNothingLeftOver) {
  CommModel m{"test", 1e9, 0.0};
  SimClock clock(2, m);
  clock.EnableTrace();
  clock.RecordCompute(0, 0.1);
  clock.RecordSend(0, 1, 1'000'000, 1);
  clock.EndStep();
  RunMetrics metrics = clock.Finish();
  EXPECT_EQ(metrics.steps.size(), 1u);
}

TEST(SimClockTest, MemoryPeakKeepsMax) {
  SimClock clock(2, CommModel::Mpi());
  clock.RecordMemory(0, 100);
  clock.RecordMemory(1, 500);
  clock.RecordMemory(0, 300);
  EXPECT_EQ(clock.Finish().memory_peak_bytes, 500u);
}

}  // namespace
}  // namespace maze::rt
