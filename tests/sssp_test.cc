// SSSP (extension algorithm) tests: native frontier relaxation and taskflow
// delta-stepping must reproduce Dijkstra on weighted symmetric graphs, and the
// priority worklist must honor priority order.
#include <cmath>

#include <gtest/gtest.h>

#include "core/weighted_graph.h"
#include "native/sssp.h"
#include "task/algorithms.h"
#include "task/priority_worklist.h"
#include "tests/test_graphs.h"

namespace maze {
namespace {

WeightedGraph SmallWeighted(uint64_t seed = 5, float max_w = 8.0f) {
  EdgeList el = testgraphs::SmallRmatUndirected(9, 6, seed);
  return WeightedGraph::FromEdgesWithRandomWeights(el, max_w, seed);
}

void ExpectDistancesNear(const std::vector<float>& got,
                         const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t v = 0; v < want.size(); ++v) {
    if (std::isinf(want[v])) {
      ASSERT_TRUE(std::isinf(got[v])) << "vertex " << v;
    } else {
      ASSERT_NEAR(got[v], want[v], 1e-4) << "vertex " << v;
    }
  }
}

TEST(WeightedGraphTest, WeightsAreSymmetricAndBounded) {
  WeightedGraph g = SmallWeighted();
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const auto& arc : g.OutArcs(u)) {
      ASSERT_GE(arc.weight, 1.0f);
      ASSERT_LE(arc.weight, 8.0f);
      // Symmetric pair carries the same weight.
      bool found = false;
      for (const auto& back : g.OutArcs(arc.dst)) {
        if (back.dst == u) {
          ASSERT_FLOAT_EQ(back.weight, arc.weight);
          found = true;
        }
      }
      ASSERT_TRUE(found) << "missing reverse arc";
    }
  }
}

TEST(ReferenceDijkstraTest, HandComputedPath) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}};
  el.Symmetrize();
  // Weights are deterministic from endpoints; read them back for the check.
  WeightedGraph g = WeightedGraph::FromEdgesWithRandomWeights(el, 4.0f, 9);
  auto dist = native::ReferenceDijkstra(g, 0);
  EXPECT_FLOAT_EQ(dist[0], 0.0f);
  // d(3) must be d(2) + w(2,3) and d(2) <= w(0,1) + w(1,2).
  float w02 = 0;
  float w23 = 0;
  for (const auto& arc : g.OutArcs(0)) {
    if (arc.dst == 2) w02 = arc.weight;
  }
  for (const auto& arc : g.OutArcs(2)) {
    if (arc.dst == 3) w23 = arc.weight;
  }
  EXPECT_LE(dist[2], w02 + 1e-6);
  EXPECT_NEAR(dist[3], dist[2] + w23, 1e-5);
}

TEST(NativeSsspTest, MatchesDijkstra) {
  WeightedGraph g = SmallWeighted();
  auto result = native::Sssp(g, rt::SsspOptions{0, 0}, rt::EngineConfig{});
  ExpectDistancesNear(result.distance, native::ReferenceDijkstra(g, 0));
}

class NativeSsspRanksTest : public ::testing::TestWithParam<int> {};

TEST_P(NativeSsspRanksTest, RankCountDoesNotChangeDistances) {
  WeightedGraph g = SmallWeighted(11);
  // Start from the busiest vertex so the traversal definitely crosses ranks
  // (a low-id source can be isolated in a skewed random graph).
  VertexId source = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(source)) source = v;
  }
  rt::EngineConfig config;
  config.num_ranks = GetParam();
  auto result = native::Sssp(g, rt::SsspOptions{source, 0}, config);
  ExpectDistancesNear(result.distance, native::ReferenceDijkstra(g, source));
  if (GetParam() > 1) EXPECT_GT(result.metrics.bytes_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Ranks, NativeSsspRanksTest, ::testing::Values(1, 2, 4));

TEST(TaskflowSsspTest, DeltaSteppingMatchesDijkstra) {
  WeightedGraph g = SmallWeighted(13);
  auto result = task::Sssp(g, rt::SsspOptions{0, 0}, rt::EngineConfig{});
  ExpectDistancesNear(result.distance, native::ReferenceDijkstra(g, 0));
  EXPECT_GT(result.rounds, 0);
}

class TaskflowSsspDeltaTest : public ::testing::TestWithParam<float> {};

TEST_P(TaskflowSsspDeltaTest, AnyBucketWidthIsCorrect) {
  WeightedGraph g = SmallWeighted(17);
  rt::SsspOptions opt;
  opt.source = 1;
  opt.delta = GetParam();
  auto result = task::Sssp(g, opt, rt::EngineConfig{});
  ExpectDistancesNear(result.distance, native::ReferenceDijkstra(g, 1));
}

INSTANTIATE_TEST_SUITE_P(Deltas, TaskflowSsspDeltaTest,
                         ::testing::Values(0.5f, 2.0f, 8.0f, 100.0f));

TEST(TaskflowSsspTest, UnreachableVerticesStayInfinite) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 1}, {1, 0}};
  WeightedGraph g = WeightedGraph::FromEdgesWithRandomWeights(el, 4.0f, 3);
  auto result = task::Sssp(g, rt::SsspOptions{0, 0}, rt::EngineConfig{});
  EXPECT_TRUE(std::isinf(result.distance[2]));
  EXPECT_TRUE(std::isinf(result.distance[3]));
}

TEST(PriorityWorklistTest, DrainsInPriorityOrder) {
  task::PriorityWorklist<int> wl;
  wl.Push(3, 30);
  wl.Push(0, 1);
  wl.Push(1, 10);
  std::vector<int> order;
  std::mutex mu;
  task::PriorityExecute<int>(
      &wl, [&](const int& item, std::vector<std::pair<uint32_t, int>>*) {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(item);
      });
  EXPECT_EQ(order, (std::vector<int>{1, 10, 30}));
}

TEST(PriorityWorklistTest, LowerPriorityPushReentersEarlierBucket) {
  task::PriorityWorklist<int> wl;
  wl.Push(2, 100);
  std::vector<int> order;
  std::mutex mu;
  task::PriorityExecute<int>(
      &wl, [&](const int& item, std::vector<std::pair<uint32_t, int>>* pushed) {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(item);
        if (item == 100) pushed->emplace_back(0, 5);  // Below current bucket.
      });
  EXPECT_EQ(order, (std::vector<int>{100, 5}));
}

TEST(PriorityWorklistTest, TotalPendingTracksPushes) {
  task::PriorityWorklist<int> wl;
  EXPECT_EQ(wl.TotalPending(), 0u);
  wl.Push(5, 1);
  wl.PushBatch({{1, 2}, {9, 3}});
  EXPECT_EQ(wl.TotalPending(), 3u);
  EXPECT_EQ(wl.NextBucket(0), 1);
  EXPECT_EQ(wl.NextBucket(2), 5);
  (void)wl.Take(1);
  EXPECT_EQ(wl.TotalPending(), 2u);
}

}  // namespace
}  // namespace maze
