#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace maze {
namespace {

TEST(StatsTest, GeometricMeanBasics) {
  EXPECT_DOUBLE_EQ(GeometricMean({4.0}), 4.0);
  EXPECT_NEAR(GeometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(GeometricMean({2.0, 8.0, 4.0}), 4.0, 1e-12);
  EXPECT_EQ(GeometricMean({}), 0.0);
}

TEST(StatsTest, GeometricMeanMatchesPaperStyleAggregation) {
  // Slowdowns {1.9, 2.0, 3.6} -> geomean ~ 2.39: the Tables 5/6 aggregation.
  double gm = GeometricMean({1.9, 2.0, 3.6});
  EXPECT_NEAR(gm, std::pow(1.9 * 2.0 * 3.6, 1.0 / 3.0), 1e-12);
}

TEST(StatsTest, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(ArithmeticMean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(ArithmeticMean({}), 0.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> vals = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Percentile(vals, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(vals, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(vals, 100), 5.0);
}

TEST(StatsTest, PowerLawExponentRecoversSlope) {
  // Build an exact power-law histogram: count(d) = C * d^-2.5.
  std::vector<uint64_t> histogram(1000, 0);
  for (size_t d = 1; d < histogram.size(); ++d) {
    histogram[d] = static_cast<uint64_t>(1e9 * std::pow(d, -2.5));
  }
  double alpha = PowerLawExponent(histogram);
  EXPECT_NEAR(alpha, 2.5, 0.2);
}

TEST(StatsTest, PowerLawExponentDegenerateInputs) {
  EXPECT_EQ(PowerLawExponent({}), 0.0);
  EXPECT_EQ(PowerLawExponent({0, 5}), 0.0);       // Single bucket.
  EXPECT_EQ(PowerLawExponent({0, 0, 0, 0}), 0.0);  // All empty.
}

}  // namespace
}  // namespace maze
