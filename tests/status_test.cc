#include "util/status.h"

#include <gtest/gtest.h>

namespace maze {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad scale");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad scale");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad scale");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

Status FailsThenPropagates(bool fail) {
  MAZE_RETURN_IF_ERROR(fail ? Status::IoError("disk") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  Status s = FailsThenPropagates(true);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace maze
