#include "util/table.h"

#include <gtest/gtest.h>

namespace maze {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  TextTable t("Demo");
  t.SetHeader({"algo", "time"});
  t.AddRow({"bfs", "1.5"});
  t.AddRow({"pagerank", "2.25"});
  std::string out = t.Render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("algo"), std::string::npos);
  EXPECT_NE(out.find("pagerank"), std::string::npos);
  EXPECT_NE(out.find("2.25"), std::string::npos);
}

TEST(TableTest, HandlesRaggedRows) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});
  t.AddRow({"1", "2", "3", "4"});
  std::string out = t.Render();
  EXPECT_NE(out.find('4'), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  TextTable t;
  t.SetHeader({"x", "y"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.RenderCsv(), "x,y\n1,2\n");
}

TEST(FormatDoubleTest, FixedAndScientific) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(0.0, 2), "0.00");
  // Very large and very small magnitudes switch to %g.
  EXPECT_NE(FormatDouble(1.5e9, 3).find("e"), std::string::npos);
  EXPECT_NE(FormatDouble(2.5e-7, 3).find("e"), std::string::npos);
}

}  // namespace
}  // namespace maze
