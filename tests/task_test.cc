#include "task/algorithms.h"

#include <atomic>

#include <gtest/gtest.h>

#include "native/cf.h"
#include "native/reference.h"
#include "task/worklist.h"
#include "tests/test_graphs.h"

namespace maze::task {
namespace {

using testgraphs::SmallRmat;
using testgraphs::SmallRmatOriented;
using testgraphs::SmallRmatUndirected;

// --- Worklist -------------------------------------------------------------------

TEST(WorklistTest, AdvanceSwapsLevels) {
  Worklist<int> wl({1, 2});
  EXPECT_EQ(wl.CurrentSize(), 2u);
  wl.Push(3);
  wl.PushBatch({4, 5});
  ASSERT_TRUE(wl.Advance());
  EXPECT_EQ(wl.CurrentSize(), 3u);
  ASSERT_FALSE(wl.Advance());
  EXPECT_TRUE(wl.Empty());
}

TEST(WorklistTest, BulkSyncExecuteCountsLevels) {
  // Chain: item i pushes i+1 until 5.
  Worklist<int> wl({0});
  std::atomic<int> visited{0};
  int levels = BulkSyncExecute<int>(&wl, [&](const int& item,
                                             std::vector<int>* pushed) {
    visited.fetch_add(1);
    if (item < 5) pushed->push_back(item + 1);
  });
  EXPECT_EQ(levels, 6);
  EXPECT_EQ(visited.load(), 6);
}

TEST(WorklistTest, ParallelPushesAllArrive) {
  std::vector<int> seed(1000);
  for (int i = 0; i < 1000; ++i) seed[i] = i;
  Worklist<int> wl(std::move(seed));
  std::atomic<int> second_level{0};
  int round = 0;
  BulkSyncExecute<int>(&wl, [&](const int& item, std::vector<int>* pushed) {
    if (item >= 0 && round == 0) pushed->push_back(-item - 1);
    if (item < 0) second_level.fetch_add(1);
  });
  EXPECT_EQ(second_level.load(), 1000);
  (void)round;
}

// --- Algorithms -----------------------------------------------------------------

TEST(TaskflowPageRankTest, MatchesReference) {
  Graph g = Graph::FromEdges(SmallRmat(), GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 5;
  auto result = PageRank(g, opt, rt::EngineConfig{});
  auto expected = native::ReferencePageRank(g, 5, opt.jump);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], expected[v], 1e-9) << v;
  }
}

TEST(TaskflowBfsTest, MatchesReference) {
  Graph g = Graph::FromEdges(SmallRmatUndirected(), GraphDirections::kOutOnly);
  auto result = Bfs(g, rt::BfsOptions{0}, rt::EngineConfig{});
  EXPECT_EQ(result.distance, native::ReferenceBfs(g, 0));
  EXPECT_GT(result.levels, 1);
}

TEST(TaskflowTriangleTest, MatchesReference) {
  Graph g = Graph::FromEdges(SmallRmatOriented(), GraphDirections::kOutOnly);
  auto result = TriangleCount(g, {}, rt::EngineConfig{});
  EXPECT_EQ(result.triangles, native::ReferenceTriangleCount(g));
}

TEST(TaskflowCfTest, SgdConverges) {
  BipartiteGraph g = testgraphs::SmallRatings().ToGraph();
  rt::CfOptions opt;
  opt.method = rt::CfMethod::kSgd;
  opt.k = 8;
  opt.iterations = 5;
  opt.learning_rate = 0.01;
  auto result = CollaborativeFiltering(g, opt, rt::EngineConfig{});
  EXPECT_LT(result.final_rmse, result.rmse_per_iteration.front());
}

TEST(TaskflowTest, NoNetworkTraffic) {
  Graph g = Graph::FromEdges(SmallRmat(9), GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 2;
  auto result = PageRank(g, opt, rt::EngineConfig{});
  EXPECT_EQ(result.metrics.bytes_sent, 0u);  // Single node only.
}

}  // namespace
}  // namespace maze::task
