// Tests for the live telemetry plane: scrape windows and rings, the
// concurrent-Record monotonicity guarantee, exemplars, the OpenMetrics
// exposition (validated by tests/openmetrics_checker.h), and the HTTP pull
// endpoint. Counter names are prefixed per test ("tmt.<test>.") because the
// counter registry is process-wide.
#include "obs/telemetry.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/counters.h"
#include "obs/openmetrics.h"
#include "tests/json_checker.h"
#include "tests/openmetrics_checker.h"

namespace maze::obs {
namespace {

TEST(TelemetrySpecTest, ParsesAllKeys) {
  auto spec = ParseTelemetrySpec("interval=0.25,rings=8,file=/tmp/x.om,listen=0");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_DOUBLE_EQ(spec.value().options.interval_seconds, 0.25);
  EXPECT_EQ(spec.value().options.ring_windows, 8u);
  EXPECT_EQ(spec.value().options.file_sink, "/tmp/x.om");
  EXPECT_EQ(spec.value().listen_port, 0);
}

TEST(TelemetrySpecTest, EmptySpecKeepsDefaults) {
  auto spec = ParseTelemetrySpec("");
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(spec.value().options.interval_seconds, 1.0);
  EXPECT_EQ(spec.value().listen_port, -1);
}

TEST(TelemetrySpecTest, RejectsBadTokens) {
  EXPECT_FALSE(ParseTelemetrySpec("interval").ok());
  EXPECT_FALSE(ParseTelemetrySpec("interval=0").ok());
  EXPECT_FALSE(ParseTelemetrySpec("interval=-1").ok());
  EXPECT_FALSE(ParseTelemetrySpec("rings=0").ok());
  EXPECT_FALSE(ParseTelemetrySpec("listen=70000").ok());
  EXPECT_FALSE(ParseTelemetrySpec("listen=-2").ok());
  EXPECT_FALSE(ParseTelemetrySpec("bogus=1").ok());
}

TEST(TelemetryRegistryTest, CounterWindowsTrackDeltas) {
  Counter& c = GetCounter("tmt.cw.a");
  c.Reset();
  c.Add(5);
  TelemetryRegistry reg;
  EXPECT_EQ(reg.ScrapeOnce(), 1u);
  c.Add(7);
  EXPECT_EQ(reg.ScrapeOnce(), 2u);
  auto latest = reg.LatestCounter("tmt.cw.a");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->scrape, 2u);
  EXPECT_EQ(latest->value, 12u);
  EXPECT_EQ(latest->delta, 7u);
  // The first window's delta is the full cumulative value.
  for (const auto& series : reg.Counters()) {
    if (series.name != "tmt.cw.a") continue;
    ASSERT_EQ(series.windows.size(), 2u);
    EXPECT_EQ(series.windows[0].value, 5u);
    EXPECT_EQ(series.windows[0].delta, 5u);
  }
  EXPECT_EQ(reg.scrapes(), 2u);
}

// Satellite (PR 10): gauges scrape like counters but carry signed values and
// signed, unclamped window deltas — levels go both ways.
TEST(TelemetryRegistryTest, GaugeWindowsTrackSignedDeltas) {
  Gauge& g = GetGauge("tmt.gw.depth");
  g.Reset();
  g.Set(5);
  TelemetryRegistry reg;
  EXPECT_EQ(reg.ScrapeOnce(), 1u);
  g.Set(2);  // Down: the delta must go negative, not clamp.
  EXPECT_EQ(reg.ScrapeOnce(), 2u);
  g.Add(-4);  // Below zero: gauges are signed throughout.
  EXPECT_EQ(reg.ScrapeOnce(), 3u);

  auto latest = reg.LatestGauge("tmt.gw.depth");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->scrape, 3u);
  EXPECT_EQ(latest->value, -2);
  EXPECT_EQ(latest->delta, -4);
  for (const auto& series : reg.Gauges()) {
    if (series.name != "tmt.gw.depth") continue;
    ASSERT_EQ(series.windows.size(), 3u);
    EXPECT_EQ(series.windows[0].value, 5);
    EXPECT_EQ(series.windows[0].delta, 5);
    EXPECT_EQ(series.windows[1].value, 2);
    EXPECT_EQ(series.windows[1].delta, -3);
  }
  EXPECT_FALSE(reg.LatestGauge("tmt.gw.never").has_value());
}

TEST(TelemetryRegistryTest, GaugeLookupCountsTowardRegistryLookups) {
  uint64_t before = RegistryLookups();
  GetGauge("tmt.greg.depth");
  EXPECT_EQ(RegistryLookups(), before + 1);
  Gauge& g = GetGauge("tmt.greg.depth");
  EXPECT_EQ(RegistryLookups(), before + 2);
  // Set/Add/value on a held handle take no lookups (hot-path contract).
  g.Set(3);
  g.Add(1);
  EXPECT_EQ(g.value(), 4);
  EXPECT_EQ(RegistryLookups(), before + 2);
}

TEST(TelemetryRegistryTest, HistogramWindowsTrackDeltaDistribution) {
  Histogram& h = GetHistogram("tmt.hw.latency");
  h.Reset();
  for (uint64_t v : {1, 2, 3, 4}) h.Record(v);
  TelemetryRegistry reg;
  reg.ScrapeOnce();
  auto w1 = reg.LatestHistogram("tmt.hw.latency");
  ASSERT_TRUE(w1.has_value());
  EXPECT_EQ(w1->count, 4u);
  EXPECT_EQ(w1->sum, 10u);
  EXPECT_EQ(w1->delta_count, 4u);
  EXPECT_EQ(w1->delta_sum, 10u);
  EXPECT_EQ(w1->delta_p50, 2u);  // Values < 8 land in exact unit buckets.
  EXPECT_EQ(w1->delta_p99, 4u);
  EXPECT_EQ(w1->delta_max, 4u);

  for (int i = 0; i < 3; ++i) h.Record(7);
  reg.ScrapeOnce();
  auto w2 = reg.LatestHistogram("tmt.hw.latency");
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(w2->count, 7u);
  EXPECT_EQ(w2->sum, 31u);
  EXPECT_EQ(w2->delta_count, 3u);
  EXPECT_EQ(w2->delta_sum, 21u);
  EXPECT_EQ(w2->delta_p50, 7u);
  EXPECT_EQ(w2->delta_max, 7u);
}

TEST(TelemetryRegistryTest, RingTrimsToConfiguredWindows) {
  Counter& c = GetCounter("tmt.ring.a");
  c.Reset();
  TelemetryOptions options;
  options.ring_windows = 3;
  TelemetryRegistry reg(options);
  for (int i = 0; i < 5; ++i) {
    c.Add(1);
    reg.ScrapeOnce();
  }
  for (const auto& series : reg.Counters()) {
    if (series.name != "tmt.ring.a") continue;
    ASSERT_EQ(series.windows.size(), 3u);
    EXPECT_EQ(series.windows.front().scrape, 3u);
    EXPECT_EQ(series.windows.back().scrape, 5u);
    EXPECT_EQ(series.windows.back().value, 5u);
    EXPECT_EQ(series.windows.back().delta, 1u);
  }
}

// Satellite 1: histogram snapshots stay monotone while Record races the
// scraper. The scraped count is derived from one consistent bucket array, so
// between-scrape counts never decrease even mid-Record (run under TSan in
// telemetry.yml).
TEST(TelemetryRegistryTest, MonotonicityHammer) {
  Histogram& h = GetHistogram("tmt.hammer.latency");
  h.Reset();
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record((i * 2654435761u + static_cast<uint64_t>(t)) % 4096);
      }
    });
  }

  TelemetryRegistry reg;
  go.store(true, std::memory_order_release);
  uint64_t last_count = 0;
  for (int s = 0; s < 200; ++s) {
    reg.ScrapeOnce();
    auto w = reg.LatestHistogram("tmt.hammer.latency");
    ASSERT_TRUE(w.has_value());
    ASSERT_GE(w->count, last_count) << "scrape " << s;
    last_count = w->count;
  }
  for (auto& t : writers) t.join();

  reg.ScrapeOnce();
  auto final_w = reg.LatestHistogram("tmt.hammer.latency");
  ASSERT_TRUE(final_w.has_value());
  EXPECT_EQ(final_w->count, kThreads * kPerThread);
  uint64_t bucket_sum = 0;
  for (uint64_t b : h.SnapshotBuckets()) bucket_sum += b;
  EXPECT_EQ(bucket_sum, kThreads * kPerThread);
  EXPECT_EQ(final_w->count, h.count());
}

TEST(TelemetryRegistryTest, ScrapeHooksRunSynchronously) {
  TelemetryRegistry reg;
  std::vector<uint64_t> seen;
  size_t token = reg.AddScrapeHook([&](uint64_t s) { seen.push_back(s); });
  reg.ScrapeOnce();
  reg.ScrapeOnce();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 1u);
  EXPECT_EQ(seen[1], 2u);
  reg.RemoveScrapeHook(token);
  reg.ScrapeOnce();
  EXPECT_EQ(seen.size(), 2u);
}

TEST(TelemetryRegistryTest, BackgroundScraperStartsAndStops) {
  TelemetryOptions options;
  options.interval_seconds = 0.005;
  TelemetryRegistry reg(options);
  reg.Start();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (reg.scrapes() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(reg.scrapes(), 2u);
  reg.Stop();
  uint64_t frozen = reg.scrapes();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(reg.scrapes(), frozen);
  reg.Start();  // Restart after Stop works.
  reg.Stop();
}

TEST(ExemplarTest, StoreKeepsLatestPerBucket) {
  ExemplarStore store;
  store.Record(3, 101);
  store.Record(3, 102);  // Same unit bucket: replaces.
  store.Record(1000, 7);
  auto snapshot = store.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, Histogram::BucketIndex(3));
  EXPECT_EQ(snapshot[0].second.request_id, 102u);
  EXPECT_EQ(snapshot[0].second.value, 3u);
  EXPECT_EQ(snapshot[1].first, Histogram::BucketIndex(1000));
  EXPECT_EQ(snapshot[1].second.request_id, 7u);
  store.Reset();
  EXPECT_TRUE(store.Snapshot().empty());
}

TEST(ExemplarTest, RegistryLookupCountsTowardRegistryLookups) {
  uint64_t before = RegistryLookups();
  GetExemplars("tmt.exreg.h");
  EXPECT_EQ(RegistryLookups(), before + 1);
}

TEST(OpenMetricsTest, NameAndEscape) {
  EXPECT_EQ(OpenMetricsName("serve.latency_us"), "maze_serve_latency_us");
  EXPECT_EQ(OpenMetricsName("a-b c"), "maze_a_b_c");
  EXPECT_EQ(OpenMetricsEscape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

TEST(OpenMetricsTest, ExpositionValidatesUnderChecker) {
  Counter& c = GetCounter("tmt.expo.counter");
  c.Reset();
  c.Add(3);
  Histogram& h = GetHistogram("tmt.expo.latency");
  h.Reset();
  for (uint64_t v : {1, 5, 900}) h.Record(v);
  TelemetryRegistry reg;
  reg.ScrapeOnce();
  std::string text = OpenMetricsText(reg);
  testutil::OpenMetricsChecker checker(text);
  ASSERT_TRUE(checker.Valid()) << checker.error();
  ASSERT_EQ(checker.counters().count("maze_tmt_expo_counter"), 1u);
  EXPECT_EQ(checker.counters().at("maze_tmt_expo_counter"), 3u);
  ASSERT_EQ(checker.histograms().count("maze_tmt_expo_latency"), 1u);
  EXPECT_EQ(checker.histograms().at("maze_tmt_expo_latency").count, 3u);
  EXPECT_EQ(checker.histograms().at("maze_tmt_expo_latency").sum, 906u);
}

TEST(OpenMetricsTest, GaugeExpositionValidatesUnderChecker) {
  Gauge& g = GetGauge("tmt.gexpo.depth");
  g.Reset();
  g.Set(-7);  // Negative samples are legal for gauges (and only gauges).
  Counter& c = GetCounter("tmt.gexpo.counter");
  c.Reset();
  c.Add(2);
  TelemetryRegistry reg;
  reg.ScrapeOnce();
  std::string text = OpenMetricsText(reg);
  testutil::OpenMetricsChecker checker(text);
  ASSERT_TRUE(checker.Valid()) << checker.error() << "\n" << text;
  ASSERT_EQ(checker.gauges().count("maze_tmt_gexpo_depth"), 1u);
  EXPECT_EQ(checker.gauges().at("maze_tmt_gexpo_depth"), -7);
  // Gauges render the bare name (no _total) and the latest scraped level.
  EXPECT_NE(text.find("# TYPE maze_tmt_gexpo_depth gauge\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\nmaze_tmt_gexpo_depth -7\n"), std::string::npos)
      << text;

  g.Set(3);
  reg.ScrapeOnce();
  std::string second = OpenMetricsText(reg);
  testutil::OpenMetricsChecker checker2(second);
  ASSERT_TRUE(checker2.Valid()) << checker2.error();
  EXPECT_EQ(checker2.gauges().at("maze_tmt_gexpo_depth"), 3);
  // A gauge moving down must not trip the counter monotonicity check.
  g.Set(1);
  reg.ScrapeOnce();
  testutil::OpenMetricsChecker checker3(OpenMetricsText(reg));
  ASSERT_TRUE(checker3.Valid()) << checker3.error();
  std::string why;
  EXPECT_TRUE(
      testutil::OpenMetricsChecker::CheckMonotonic(checker2, checker3, &why))
      << why;
}

TEST(OpenMetricsCheckerTest, RejectsMalformedGaugeExpositions) {
  // A negative sample under a counter family stays illegal.
  EXPECT_FALSE(testutil::OpenMetricsChecker(
                   "# TYPE maze_x counter\nmaze_x_total -1\n# EOF\n")
                   .Valid());
  // Negative gauge samples are fine.
  EXPECT_TRUE(testutil::OpenMetricsChecker(
                  "# TYPE maze_g gauge\nmaze_g -3\n# EOF\n")
                  .Valid());
  // A gauge family must expose the bare name, not counter/histogram suffixes.
  EXPECT_FALSE(testutil::OpenMetricsChecker(
                   "# TYPE maze_g gauge\nmaze_g_total 1\n# EOF\n")
                   .Valid());
  EXPECT_FALSE(testutil::OpenMetricsChecker(
                   "# TYPE maze_g gauge\nmaze_g_count 1\n# EOF\n")
                   .Valid());
}

TEST(OpenMetricsTest, ExpositionMonotonicAcrossScrapes) {
  Counter& c = GetCounter("tmt.mono.counter");
  c.Reset();
  Histogram& h = GetHistogram("tmt.mono.latency");
  h.Reset();
  TelemetryRegistry reg;
  c.Add(2);
  h.Record(10);
  reg.ScrapeOnce();
  std::string first = OpenMetricsText(reg);
  c.Add(9);
  h.Record(20);
  h.Record(30);
  reg.ScrapeOnce();
  std::string second = OpenMetricsText(reg);
  testutil::OpenMetricsChecker prev(first), cur(second);
  ASSERT_TRUE(prev.Valid()) << prev.error();
  ASSERT_TRUE(cur.Valid()) << cur.error();
  std::string why;
  EXPECT_TRUE(testutil::OpenMetricsChecker::CheckMonotonic(prev, cur, &why))
      << why;
  // And the converse direction must fail: counters may not go backward.
  EXPECT_FALSE(testutil::OpenMetricsChecker::CheckMonotonic(cur, prev, &why));
}

TEST(OpenMetricsTest, ExemplarsRenderOnBucketLines) {
  Histogram& h = GetHistogram("tmt.exemplar.latency");
  h.Reset();
  h.Record(42);
  GetExemplars("tmt.exemplar.latency").Record(42, 777);
  TelemetryRegistry reg;
  reg.ScrapeOnce();
  std::string text = OpenMetricsText(reg);
  testutil::OpenMetricsChecker checker(text);
  ASSERT_TRUE(checker.Valid()) << checker.error();
  EXPECT_NE(text.find("# {request_id=\"777\"} 42"), std::string::npos) << text;
}

TEST(OpenMetricsCheckerTest, RejectsMalformedExpositions) {
  EXPECT_FALSE(testutil::OpenMetricsChecker("").Valid());
  EXPECT_FALSE(testutil::OpenMetricsChecker("maze_x_total 1\n").Valid());
  EXPECT_FALSE(  // Missing # EOF.
      testutil::OpenMetricsChecker("# TYPE maze_x counter\nmaze_x_total 1\n")
          .Valid());
  EXPECT_FALSE(  // Sample without a TYPE family.
      testutil::OpenMetricsChecker("maze_x_total 1\n# EOF\n").Valid());
  EXPECT_FALSE(  // Bad name charset.
      testutil::OpenMetricsChecker(
          "# TYPE maze-x counter\nmaze-x_total 1\n# EOF\n")
          .Valid());
  EXPECT_FALSE(  // Negative counter.
      testutil::OpenMetricsChecker(
          "# TYPE maze_x counter\nmaze_x_total -1\n# EOF\n")
          .Valid());
  EXPECT_FALSE(  // Buckets not cumulative.
      testutil::OpenMetricsChecker("# TYPE maze_h histogram\n"
                                   "maze_h_bucket{le=\"1\"} 5\n"
                                   "maze_h_bucket{le=\"2\"} 3\n"
                                   "maze_h_bucket{le=\"+Inf\"} 5\n"
                                   "maze_h_count 5\nmaze_h_sum 9\n# EOF\n")
          .Valid());
  EXPECT_FALSE(  // +Inf bucket disagrees with _count.
      testutil::OpenMetricsChecker("# TYPE maze_h histogram\n"
                                   "maze_h_bucket{le=\"+Inf\"} 4\n"
                                   "maze_h_count 5\nmaze_h_sum 9\n# EOF\n")
          .Valid());
  EXPECT_FALSE(  // Bad escape in a label value.
      testutil::OpenMetricsChecker("# TYPE maze_h histogram\n"
                                   "maze_h_bucket{le=\"\\x\"} 1\n"
                                   "maze_h_bucket{le=\"+Inf\"} 1\n"
                                   "maze_h_count 1\nmaze_h_sum 1\n# EOF\n")
          .Valid());
  EXPECT_FALSE(  // Content after # EOF.
      testutil::OpenMetricsChecker(
          "# TYPE maze_x counter\nmaze_x_total 1\n# EOF\nmaze_x_total 2\n")
          .Valid());
}

TEST(TelemetryRegistryTest, FileSinkWritesExpositionPerScrape) {
  Counter& c = GetCounter("tmt.sink.counter");
  c.Reset();
  c.Add(4);
  std::string path = "telemetry_test_sink.om";
  TelemetryOptions options;
  options.file_sink = path;
  {
    TelemetryRegistry reg(options);
    reg.ScrapeOnce();
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    testutil::OpenMetricsChecker checker(buffer.str());
    EXPECT_TRUE(checker.Valid()) << checker.error();
    EXPECT_EQ(checker.counters().at("maze_tmt_sink_counter"), 4u);
  }
  std::remove(path.c_str());
}

TEST(MetricsEndpointTest, ServesMetricsHealthzReportAnd404) {
  Counter& c = GetCounter("tmt.endpoint.counter");
  c.Reset();
  c.Add(11);
  TelemetryRegistry reg;
  MetricsEndpoint endpoint(&reg);
  endpoint.SetReport([] { return std::string("{\"report\": true}"); });
  ASSERT_TRUE(endpoint.Start(0).ok());
  ASSERT_GT(endpoint.port(), 0);

  // Every /metrics pull takes a fresh scrape.
  auto metrics = HttpGet(endpoint.port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(reg.scrapes(), 1u);
  testutil::OpenMetricsChecker checker(metrics.value());
  ASSERT_TRUE(checker.Valid()) << checker.error();
  EXPECT_EQ(checker.counters().at("maze_tmt_endpoint_counter"), 11u);

  c.Add(1);
  auto again = HttpGet(endpoint.port(), "/metrics");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(reg.scrapes(), 2u);
  testutil::OpenMetricsChecker checker2(again.value());
  ASSERT_TRUE(checker2.Valid()) << checker2.error();
  std::string why;
  EXPECT_TRUE(
      testutil::OpenMetricsChecker::CheckMonotonic(checker, checker2, &why))
      << why;

  auto healthz = HttpGet(endpoint.port(), "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_NE(healthz.value().find("\"status\""), std::string::npos);

  auto report = HttpGet(endpoint.port(), "/report");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(testutil::JsonChecker(report.value()).Valid());

  EXPECT_FALSE(HttpGet(endpoint.port(), "/nope").ok());

  int port = endpoint.port();
  endpoint.Stop();
  EXPECT_FALSE(HttpGet(port, "/metrics").ok());
}

TEST(MetricsEndpointTest, StartTelemetryFromEnvUnsetIsNull) {
  ::unsetenv("MAZE_TELEMETRY_TEST_VAR");
  auto live = StartTelemetryFromEnv("MAZE_TELEMETRY_TEST_VAR");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live.value().telemetry, nullptr);
  EXPECT_EQ(live.value().endpoint, nullptr);
}

TEST(MetricsEndpointTest, StartTelemetryFromEnvWithListen) {
  ::setenv("MAZE_TELEMETRY_TEST_VAR", "interval=0.05,rings=4,listen=0", 1);
  auto live = StartTelemetryFromEnv("MAZE_TELEMETRY_TEST_VAR");
  ::unsetenv("MAZE_TELEMETRY_TEST_VAR");
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  ASSERT_NE(live.value().telemetry, nullptr);
  ASSERT_NE(live.value().endpoint, nullptr);
  auto body = HttpGet(live.value().endpoint->port(), "/metrics");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_TRUE(testutil::OpenMetricsChecker(body.value()).Valid());
  // Endpoint must stop before the registry it scrapes.
  live.value().endpoint.reset();
  live.value().telemetry.reset();
}

}  // namespace
}  // namespace maze::obs
