// Shared graph fixtures for engine tests: every engine (native, vertexlab,
// matblas, datalite, taskflow, bspgraph) is validated on the same inputs against
// the serial reference implementations.
#ifndef MAZE_TESTS_TEST_GRAPHS_H_
#define MAZE_TESTS_TEST_GRAPHS_H_

#include "core/edge_list.h"
#include "core/graph.h"
#include "core/ratings_gen.h"
#include "core/rmat.h"

namespace maze::testgraphs {

// Figure 2's directed 4-vertex graph.
inline EdgeList Figure2() {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}};
  return el;
}

// Small deterministic RMAT digraph (deduplicated), for PageRank-style tests.
inline EdgeList SmallRmat(int scale = 10, int edge_factor = 8,
                          uint64_t seed = 5) {
  EdgeList el = GenerateRmat(RmatParams::Graph500(scale, edge_factor, seed));
  el.Deduplicate();
  return el;
}

// Same graph symmetrized, for BFS (undirected usage).
inline EdgeList SmallRmatUndirected(int scale = 10, int edge_factor = 8,
                                    uint64_t seed = 5) {
  EdgeList el = SmallRmat(scale, edge_factor, seed);
  el.Symmetrize();
  return el;
}

// Oriented (src < dst) triangle-counting input per §4.1.2.
inline EdgeList SmallRmatOriented(int scale = 10, int edge_factor = 8,
                                  uint64_t seed = 5) {
  EdgeList el = GenerateRmat(RmatParams::TriangleCounting(scale, edge_factor,
                                                          seed));
  el.OrientBySmallerId();
  return el;
}

// Small ratings dataset for CF tests.
inline RatingsDataset SmallRatings(int scale = 10, uint64_t seed = 5) {
  RatingsParams params;
  params.scale = scale;
  params.edge_factor = 8;
  params.num_items = 128;
  params.seed = seed;
  return GenerateRatings(params);
}

}  // namespace maze::testgraphs

#endif  // MAZE_TESTS_TEST_GRAPHS_H_
