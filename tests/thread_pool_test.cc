#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace maze {
namespace {

TEST(ThreadPoolTest, CoversEntireRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, 128, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, 16, [&](uint64_t, uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SmallRangeRunsInline) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(10, 100, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(1000, 10, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 1000u);
}

TEST(ThreadPoolTest, ReentrantCallExecutesInline) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(8, 1, [&](uint64_t, uint64_t) {
    // Nested call from a worker must not deadlock.
    pool.ParallelFor(100, 10, [&](uint64_t lo, uint64_t hi) {
      total.fetch_add(hi - lo);
    });
  });
  EXPECT_EQ(total.load(), 800u);
}

TEST(ThreadPoolTest, SequentialLoopsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> count{0};
    pool.ParallelFor(1000, 16, [&](uint64_t lo, uint64_t hi) {
      count.fetch_add(hi - lo);
    });
    ASSERT_EQ(count.load(), 1000u) << "round " << round;
  }
}

TEST(ThreadPoolTest, ParallelForEachVisitsAll) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  pool.ParallelForEach(hits.size(), [&](uint64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentLoopsFromManyThreads) {
  // Several threads each open their own parallel region on one shared pool;
  // every region must cover its range exactly once, with no cross-talk.
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr uint64_t kN = 20000;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(kN);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 20; ++round) {
        pool.ParallelFor(kN, 64, [&, c](uint64_t lo, uint64_t hi) {
          for (uint64_t i = lo; i < hi; ++i) hits[c][i].fetch_add(1);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (uint64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[c][i].load(), 20) << "caller " << c << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, DeeplyNestedLoopsComplete) {
  ThreadPool pool(4);
  std::atomic<uint64_t> leaf{0};
  pool.ParallelFor(4, 1, [&](uint64_t, uint64_t) {
    pool.ParallelFor(4, 1, [&](uint64_t, uint64_t) {
      pool.ParallelFor(64, 4, [&](uint64_t lo, uint64_t hi) {
        leaf.fetch_add(hi - lo);
      });
    });
  });
  EXPECT_EQ(leaf.load(), 4u * 4u * 64u);
}

TEST(ThreadPoolTest, ConcurrentNestedStress) {
  // Concurrent callers each running nested regions: the worst case for the
  // loop registry (many loops in flight, opened and retired out of order).
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        pool.ParallelFor(8, 1, [&](uint64_t, uint64_t) {
          pool.ParallelFor(200, 8, [&](uint64_t lo, uint64_t hi) {
            total.fetch_add(hi - lo);
          });
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), static_cast<uint64_t>(kCallers) * 10u * 8u * 200u);
}

TEST(ThreadPoolTest, RegionCpuMeterCountsChunkWork) {
  ThreadPool pool(4);
  RegionCpuMeter meter;
  std::atomic<uint64_t> sink{0};
  pool.ParallelFor(1u << 16, 256, [&](uint64_t lo, uint64_t hi) {
    uint64_t acc = 0;
    for (uint64_t i = lo; i < hi; ++i) acc += i * i;
    sink.fetch_add(acc, std::memory_order_relaxed);
  });
  // Chunks executed under the innermost live meter must have charged it.
  EXPECT_GT(meter.worker_nanos(), 0u);
  EXPECT_GE(meter.serial_seconds(), 0.0);
}

TEST(ThreadPoolTest, InlineFastPathChargesSerialNotWorker) {
  ThreadPool pool(4);
  RegionCpuMeter meter;
  uint64_t acc = 0;
  // n <= grain runs inline with no scheduler interaction: the time is the
  // owning thread's serial share, not chunk (worker) time.
  pool.ParallelFor(100, 100, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) acc += i;
  });
  EXPECT_EQ(acc, 4950u);
  EXPECT_EQ(meter.worker_nanos(), 0u);
}

TEST(ThreadPoolTest, ResizeChangesWorkerCountAndPoolStaysUsable) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2u);
  pool.Resize(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(1000, 16, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 1000u);
  pool.Resize(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  sum = 0;
  pool.ParallelFor(100, 16, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 100u);
}

TEST(ThreadPoolTest, DefaultPoolIsUsable) {
  std::atomic<uint64_t> sum{0};
  ParallelFor(10000, 64, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 10000u);
  EXPECT_GE(ThreadPool::Default().num_threads(), 1u);
}

}  // namespace
}  // namespace maze
