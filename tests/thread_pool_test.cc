#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace maze {
namespace {

TEST(ThreadPoolTest, CoversEntireRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, 128, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, 16, [&](uint64_t, uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SmallRangeRunsInline) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(10, 100, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(1000, 10, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 1000u);
}

TEST(ThreadPoolTest, ReentrantCallExecutesInline) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(8, 1, [&](uint64_t, uint64_t) {
    // Nested call from a worker must not deadlock.
    pool.ParallelFor(100, 10, [&](uint64_t lo, uint64_t hi) {
      total.fetch_add(hi - lo);
    });
  });
  EXPECT_EQ(total.load(), 800u);
}

TEST(ThreadPoolTest, SequentialLoopsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> count{0};
    pool.ParallelFor(1000, 16, [&](uint64_t lo, uint64_t hi) {
      count.fetch_add(hi - lo);
    });
    ASSERT_EQ(count.load(), 1000u) << "round " << round;
  }
}

TEST(ThreadPoolTest, ParallelForEachVisitsAll) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  pool.ParallelForEach(hits.size(), [&](uint64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, DefaultPoolIsUsable) {
  std::atomic<uint64_t> sum{0};
  ParallelFor(10000, 64, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 10000u);
  EXPECT_GE(ThreadPool::Default().num_threads(), 1u);
}

}  // namespace
}  // namespace maze
