#include "vertex/algorithms.h"

#include <gtest/gtest.h>

#include "native/cf.h"
#include "native/reference.h"
#include "tests/test_graphs.h"
#include "vertex/engine.h"

namespace maze::vertex {
namespace {

using testgraphs::SmallRmat;
using testgraphs::SmallRmatOriented;
using testgraphs::SmallRmatUndirected;

rt::EngineConfig Config(int ranks = 1) {
  rt::EngineConfig config;
  config.num_ranks = ranks;
  config.comm = DefaultComm();
  return config;
}

TEST(VertexlabPageRankTest, MatchesReference) {
  Graph g = Graph::FromEdges(SmallRmat(), GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 5;
  auto result = PageRank(g, opt, Config());
  auto expected = native::ReferencePageRank(g, 5, opt.jump);
  ASSERT_EQ(result.ranks.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], expected[v], 1e-9) << "vertex " << v;
  }
}

class VertexlabRanksTest : public ::testing::TestWithParam<int> {};

TEST_P(VertexlabRanksTest, PageRankInvariantToRankCount) {
  Graph g = Graph::FromEdges(SmallRmat(9), GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 3;
  auto result = PageRank(g, opt, Config(GetParam()));
  auto expected = native::ReferencePageRank(g, 3, opt.jump);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result.ranks[v], expected[v], 1e-9);
  }
  if (GetParam() > 1) EXPECT_GT(result.metrics.bytes_sent, 0u);
}

TEST_P(VertexlabRanksTest, BfsMatchesReference) {
  Graph g = Graph::FromEdges(SmallRmatUndirected(9), GraphDirections::kOutOnly);
  auto result = Bfs(g, rt::BfsOptions{0}, Config(GetParam()));
  EXPECT_EQ(result.distance, native::ReferenceBfs(g, 0));
}

TEST_P(VertexlabRanksTest, TriangleCountMatchesReference) {
  Graph g = Graph::FromEdges(SmallRmatOriented(9), GraphDirections::kOutOnly);
  auto result = TriangleCount(g, {}, Config(GetParam()));
  EXPECT_EQ(result.triangles, native::ReferenceTriangleCount(g));
}

INSTANTIATE_TEST_SUITE_P(Ranks, VertexlabRanksTest, ::testing::Values(1, 2, 4));

TEST(VertexlabCfTest, GdMatchesNativeGd) {
  BipartiteGraph g = testgraphs::SmallRatings(9).ToGraph();
  rt::CfOptions opt;
  opt.method = rt::CfMethod::kGd;
  opt.k = 4;
  opt.iterations = 3;
  opt.step_decay = 1.0;  // vertexlab keeps gamma fixed; align native.
  auto vl = CollaborativeFiltering(g, opt, Config());
  auto nat = native::CollaborativeFiltering(g, opt, rt::EngineConfig{});
  ASSERT_EQ(vl.user_factors.size(), nat.user_factors.size());
  for (size_t i = 0; i < nat.user_factors.size(); ++i) {
    ASSERT_NEAR(vl.user_factors[i], nat.user_factors[i], 1e-9) << i;
  }
  for (size_t i = 0; i < nat.item_factors.size(); ++i) {
    ASSERT_NEAR(vl.item_factors[i], nat.item_factors[i], 1e-9) << i;
  }
}

TEST(VertexlabEngineTest, MessageCombiningReducesTraffic) {
  // PageRank messages are combinable: traffic must be bounded by one value per
  // (vertex, rank) pair, far below one value per edge.
  Graph g = Graph::FromEdges(SmallRmat(11, 16), GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 2;
  auto result = PageRank(g, opt, Config(2));
  uint64_t per_edge_bytes =
      static_cast<uint64_t>(g.num_edges()) * 12 * opt.iterations;
  EXPECT_LT(result.metrics.bytes_sent, per_edge_bytes);
}

TEST(VertexlabEngineTest, UsesSocketCommProfile) {
  EXPECT_EQ(DefaultComm().name, "socket");
}

TEST(VertexlabEngineTest, BfsSparseActivityTerminates) {
  // A graph with an isolated component: the engine must stop once no messages
  // flow, well before the max-superstep bound.
  EdgeList el;
  el.num_vertices = 6;
  el.edges = {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {4, 5}, {5, 4}};
  Graph g = Graph::FromEdges(el, GraphDirections::kOutOnly);
  auto result = Bfs(g, rt::BfsOptions{0}, Config());
  EXPECT_EQ(result.distance[2], 2u);
  EXPECT_EQ(result.distance[4], kInfiniteDistance);
  EXPECT_LT(result.levels, 6);
}

TEST(VertexlabEngineTest, MetricsPopulated) {
  Graph g = Graph::FromEdges(SmallRmat(9), GraphDirections::kBoth);
  rt::PageRankOptions opt;
  opt.iterations = 2;
  auto result = PageRank(g, opt, Config(4));
  EXPECT_GT(result.metrics.elapsed_seconds, 0.0);
  EXPECT_GT(result.metrics.memory_peak_bytes, 0u);
  EXPECT_GT(result.metrics.cpu_utilization, 0.0);
  EXPECT_LE(result.metrics.cpu_utilization, 1.0);
}

}  // namespace
}  // namespace maze::vertex
